"""Chrome ``trace_event`` export for collected spans.

Chrome's trace viewer (``about:tracing``, or https://ui.perfetto.dev)
reads a JSON object with a ``traceEvents`` array; each complete span
maps to one ``"ph": "X"`` (complete) event with microsecond timestamps.
Span timestamps come from the shared monotonic clock
(:mod:`repro.obs.clock`), which on Linux is machine-global — so replica
and coordinator spans of one trace line up on the same timeline, grouped
into per-process tracks by ``pid``.

``repro trace export`` drives :func:`export_chrome_trace` over the JSONL
event sink a server wrote (``ObsConfig.export_path``) or over a single
trace fetched from ``GET /v1/trace/<id>``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def chrome_events(spans: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Map finished span records to Chrome ``trace_event`` dicts."""
    events = []
    for span in spans:
        args = {
            "trace_id": span.get("trace_id"),
            "span_id": span.get("span_id"),
            "parent_id": span.get("parent_id"),
        }
        args.update(span.get("attrs") or {})
        if span.get("events"):
            args["events"] = span["events"]
        events.append(
            {
                "name": span.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": float(span.get("start") or 0.0) * 1e6,
                "dur": max(float(span.get("duration") or 0.0), 0.0) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("pid", 0),
                "args": args,
            }
        )
    return events


def chrome_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """A complete ``about:tracing``-loadable document."""
    return {"traceEvents": chrome_events(spans), "displayTimeUnit": "ms"}


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load span records from a JSONL event sink file."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def export_chrome_trace(
    spans: list[dict[str, Any]], out_path: str | Path
) -> int:
    """Write spans as a Chrome trace file; returns the event count."""
    document = chrome_trace(spans)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)
    return len(document["traceEvents"])


def span_children(spans: list[dict[str, Any]]) -> dict[str | None, list[dict[str, Any]]]:
    """Group spans by ``parent_id`` (``None`` holds the roots)."""
    children: dict[str | None, list[dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    return children


def format_tree(spans: list[dict[str, Any]]) -> str:
    """Indented one-line-per-span rendering of a trace (CLI/debugging)."""
    by_parent = span_children(spans)
    ids = {span["span_id"] for span in spans}
    lines: list[str] = []

    def walk(span: dict[str, Any], depth: int) -> None:
        duration = span.get("duration") or 0.0
        events = "".join(
            f" !{event['name']}" for event in span.get("events") or []
        )
        lines.append(
            f"{'  ' * depth}{span['name']}  {duration * 1000:.3f} ms"
            f"  [pid {span.get('pid', '?')}]{events}"
        )
        for child in sorted(
            by_parent.get(span["span_id"], []), key=lambda s: s["start"]
        ):
            walk(child, depth + 1)

    roots = [
        span for span in spans
        if span.get("parent_id") is None or span["parent_id"] not in ids
    ]
    for root in sorted(roots, key=lambda s: s["start"]):
        walk(root, 0)
    return "\n".join(lines)
