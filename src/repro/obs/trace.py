"""Trace contexts, spans, and the process-wide tracer.

Model (see ``docs/observability.md`` for the walkthrough):

* A **trace** is one request's journey through the stack, identified by
  a random 64-bit hex id minted at the front door (``http.py`` or the
  embedded ``Client``). The sampling decision is made exactly once, at
  ingress, with a deterministic accumulator — at ``sample_rate=0.01``
  every 100th ingress samples, no RNG involved.
* A **span** is one timed operation inside a trace (``gateway.execute``,
  ``engine.query``, ``wal.append``, ``replica.apply``...). Spans nest via
  ``parent_id``; ids are ``<pid hex>-<seq hex>`` so spans minted in
  replica worker processes can never collide with the coordinator's.
* A :class:`TraceContext` is the immutable pair ``(trace_id, span_id)``
  a child span should attach under. It is what travels: stashed on the
  (frozen) request dataclasses via ``object.__setattr__`` — riding the
  instance ``__dict__`` through pickling across cluster pipes without
  touching the generated ``__init__``/``__eq__`` — and shipped alongside
  WAL delta frames.

Cost discipline: with tracing disabled (or the request unsampled) every
entry point here returns a shared no-op singleton after a couple of
attribute checks — ``benchmarks/bench_obs.py`` holds the hot path to
< 3% throughput overhead at 1% sampling.

Finished spans land in a bounded ring buffer (``trace(id)`` scans it for
``GET /v1/trace/<id>``), feed the per-stage histograms, and — when an
``export_path`` is configured — append to a JSONL event sink that
``repro trace export`` turns into a Chrome ``trace_event`` file.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any

from ..config import ObsConfig
from . import clock
from .histograms import HistogramRegistry
from .slowlog import SlowQueryLog

#: Instance-dict attribute carrying a request's TraceContext across layers.
TRACE_ATTR = "trace_ctx"


@dataclass(frozen=True)
class TraceContext:
    """Where in a sampled trace the next child span belongs."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}


class Span:
    """One open timed operation; mutable until finished into the ring."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start", "duration", "attrs", "events", "pid",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attrs: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = clock.now()
        self.duration: float | None = None
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []
        self.pid = os.getpid()

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the open span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event inside the span."""
        entry: dict[str, Any] = {"name": name, "at": clock.now()}
        entry.update(attrs)
        self.events.append(entry)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attrs": self.attrs,
            "events": self.events,
        }


class _NoopSpan:
    """Absorbs instrumentation when tracing is off or the request unsampled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Active:
    """The contextvar payload: current context plus the open span (if any)."""

    __slots__ = ("ctx", "span")

    def __init__(self, ctx: TraceContext, span: Span | None) -> None:
        self.ctx = ctx
        self.span = span


#: The active trace position of the current thread/task, or ``None``.
_ACTIVE: ContextVar[_Active | None] = ContextVar("repro_obs_active", default=None)


class _SpanHandle:
    """``with tracer.span(...)`` guard: activates, finishes, restores."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set(
            _Active(TraceContext(self.span.trace_id, self.span.span_id), self.span)
        )
        self.span.start = clock.now()
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _ACTIVE.reset(self._token)
        if exc is not None:
            self.span.set(error=getattr(exc, "code", type(exc).__name__))
        self._tracer.finish(self.span)
        return False


class Ingress:
    """Context manager owning a sampled trace's root span (the front door)."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    @property
    def ctx(self) -> TraceContext:
        """Context to :func:`attach` to the request(s) this ingress admits."""
        return TraceContext(self.span.trace_id, self.span.span_id)

    @property
    def trace_id(self) -> str:
        return self.span.trace_id

    def __enter__(self) -> "Ingress":
        self._token = _ACTIVE.set(_Active(self.ctx, self.span))
        self.span.start = clock.now()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _ACTIVE.reset(self._token)
        if exc is not None:
            self.span.set(error=getattr(exc, "code", type(exc).__name__))
        self._tracer.finish(self.span)
        return False


class _NoopIngress:
    """Unsampled/disabled front door: ``ctx is None`` tells callers to skip."""

    __slots__ = ()
    ctx = None
    trace_id = None

    def __enter__(self) -> "_NoopIngress":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_INGRESS = _NoopIngress()


class _Activation:
    """``with tracer.activate(ctx)``: adopt a shipped context (no open span)."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext | None) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> TraceContext | None:
        if self._ctx is not None:
            self._token = _ACTIVE.set(_Active(self._ctx, None))
        return self._ctx

    def __exit__(self, *exc: Any) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False


class _Measured:
    """Always-on request envelope: histogram + slow-log, trace or no trace."""

    __slots__ = ("_tracer", "_stage", "_trace_id", "_source", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        stage: str,
        trace_id: str | None,
        source: int | None,
    ) -> None:
        self._tracer = tracer
        self._stage = stage
        self._trace_id = trace_id
        self._source = source

    def __enter__(self) -> "_Measured":
        self._start = clock.now()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = clock.now() - self._start
        status = "OK" if exc is None else str(
            getattr(exc, "code", type(exc).__name__)
        )
        self._tracer.histograms.observe(self._stage, duration)
        self._tracer.slowlog.record(
            stage=self._stage,
            duration_s=duration,
            status=status,
            trace_id=self._trace_id,
            source=self._source,
        )
        return False


class Tracer:
    """Process-wide span collector: ring buffer, histograms, slow log, sink.

    One instance lives at module scope (reachable through the
    :mod:`repro.obs` facade functions); gateways install their
    :class:`~repro.config.ObsConfig` into it at construction, replica
    workers configure it with ``outbox=True`` so their finished spans can
    be drained and shipped back over the pipe.
    """

    def __init__(self) -> None:
        self.histograms = HistogramRegistry()
        self._lock = threading.Lock()
        self._sink = None
        self._reset_locked(ObsConfig())

    # -- lifecycle ------------------------------------------------------ #

    def _reset_locked(self, config: ObsConfig) -> None:
        self.config = config
        self.enabled = config.enabled
        self.ring: deque[dict[str, Any]] = deque(maxlen=config.ring_capacity)
        self.slowlog = SlowQueryLog(
            config.slowlog_capacity, config.slowlog_threshold_ms
        )
        self._accumulator = 0.0
        self._span_seq = 0
        self._outbox: list[dict[str, Any]] | None = None
        self._close_sink_locked()
        self.traces_started = 0
        self.spans_finished = 0

    def _close_sink_locked(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
            self._sink = None

    def configure(self, config: ObsConfig, *, outbox: bool = False) -> None:
        """Install a fresh config, dropping all previously collected state."""
        with self._lock:
            self._reset_locked(config)
            if outbox:
                self._outbox = []
        self.histograms.reset()

    def reset(self) -> None:
        """Back to the disabled defaults (tests do this between cases)."""
        self.configure(ObsConfig())
        _ACTIVE.set(None)

    # -- span creation -------------------------------------------------- #

    def _next_span_id_locked(self) -> str:
        self._span_seq += 1
        return f"{os.getpid():x}-{self._span_seq:x}"

    def ingress(self, name: str, **attrs: Any) -> Ingress | _NoopIngress:
        """Mint (or decline) a trace at the front door."""
        if not self.enabled:
            return NOOP_INGRESS
        with self._lock:
            self._accumulator += self.config.sample_rate
            if self._accumulator < 1.0:
                return NOOP_INGRESS
            self._accumulator -= 1.0
            span_id = self._next_span_id_locked()
            self.traces_started += 1
        trace_id = secrets.token_hex(8)
        return Ingress(self, Span(trace_id, span_id, None, name, attrs))

    def span(self, name: str, **attrs: Any) -> _SpanHandle | _NoopSpan:
        """Open a child span under the active context (no-op otherwise)."""
        if not self.enabled:
            return NOOP_SPAN
        active = _ACTIVE.get()
        if active is None:
            return NOOP_SPAN
        with self._lock:
            span_id = self._next_span_id_locked()
        return _SpanHandle(
            self,
            Span(active.ctx.trace_id, span_id, active.ctx.span_id, name, attrs),
        )

    def activate(self, ctx: TraceContext | None) -> _Activation:
        """Adopt a context that arrived attached to a request or a frame."""
        return _Activation(ctx if self.enabled else None)

    def current(self) -> TraceContext | None:
        """The active context (parent for the next child span), if any."""
        active = _ACTIVE.get()
        return active.ctx if active is not None else None

    def measured(
        self,
        stage: str,
        *,
        trace_id: str | None = None,
        source: int | None = None,
    ) -> _Measured:
        """Always-on request envelope feeding histogram + slow-query log."""
        return _Measured(self, stage, trace_id, source)

    # -- direct recording ----------------------------------------------- #

    def record_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        ctx: TraceContext | None = None,
        observe: bool = True,
        **attrs: Any,
    ) -> None:
        """Record an already-timed interval as a finished span.

        ``observe=False`` skips the histogram feed — used where the
        interval was already observed through an always-on path (e.g.
        ``queue.wait``) so sampling cannot double-count it.
        """
        if not self.enabled:
            return
        if ctx is None:
            ctx = self.current()
            if ctx is None:
                return
        with self._lock:
            span_id = self._next_span_id_locked()
        span = Span(ctx.trace_id, span_id, ctx.span_id, name, attrs)
        span.start = start
        span.duration = duration
        self.finish(span, observe=observe)

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to the open span (or record a point span)."""
        if not self.enabled:
            return
        active = _ACTIVE.get()
        if active is None:
            return
        if active.span is not None:
            active.span.event(name, **attrs)
        else:
            at = clock.now()
            self.record_span(name, start=at, duration=0.0, observe=False, **attrs)

    def observe(self, stage: str, seconds: float) -> None:
        """Feed the always-on per-stage histograms directly."""
        self.histograms.observe(stage, seconds)

    # -- collection ----------------------------------------------------- #

    def finish(self, span: Span, *, observe: bool = True) -> None:
        """Close a span into the ring/histograms/outbox/sink."""
        if span.duration is None:
            span.duration = clock.now() - span.start
        if observe:
            self.histograms.observe(span.name, span.duration)
        record = span.to_dict()
        with self._lock:
            self.ring.append(record)
            self.spans_finished += 1
            if self._outbox is not None:
                self._outbox.append(record)
            self._write_sink_locked(record)

    def drain(self) -> list[dict[str, Any]]:
        """Pop the outbox (replica workers ship these back per frame)."""
        with self._lock:
            if not self._outbox:
                return []
            drained, self._outbox = self._outbox, []
            return drained

    def ingest_spans(self, records: list[dict[str, Any]]) -> None:
        """Adopt spans finished in another process (coordinator side)."""
        if not records:
            return
        for record in records:
            duration = record.get("duration")
            if duration is not None:
                self.histograms.observe(record["name"], duration)
        with self._lock:
            self.ring.extend(records)
            self.spans_finished += len(records)
            for record in records:
                self._write_sink_locked(record)

    def _write_sink_locked(self, record: dict[str, Any]) -> None:
        if self.config.export_path is None:
            return
        if self._sink is None:
            self._sink = open(self.config.export_path, "a", encoding="utf-8")
        self._sink.write(json.dumps(record) + "\n")
        self._sink.flush()

    # -- query surfaces -------------------------------------------------- #

    def trace(self, trace_id: str) -> list[dict[str, Any]]:
        """Every retained span of one trace, ordered by start time."""
        with self._lock:
            spans = [dict(s) for s in self.ring if s["trace_id"] == trace_id]
        spans.sort(key=lambda s: s["start"])
        return spans

    def slow(self, threshold_ms: float | None = None) -> list[dict[str, Any]]:
        """Slow-query log entries (optionally re-filtered by threshold)."""
        return self.slowlog.entries(threshold_ms)

    def snapshot(self) -> dict[str, Any]:
        """The ``obs`` section of ``/v1/stats`` (and ``/v1/metrics``)."""
        with self._lock:
            tracing = {
                "enabled": self.enabled,
                "sample_rate": self.config.sample_rate,
                "traces_started": self.traces_started,
                "spans_finished": self.spans_finished,
                "ring_depth": len(self.ring),
                "ring_capacity": self.config.ring_capacity,
            }
        return {
            "tracing": tracing,
            "slowlog": self.slowlog.to_dict(),
            "histograms": self.histograms.to_dict(),
        }


#: The process-wide tracer behind the :mod:`repro.obs` facade.
TRACER = Tracer()
