"""Bounded slow-query log (the ``GET /v1/slow`` surface).

A slow-query log that grows with the number of slow queries is itself an
overload hazard — the moment the system degrades is exactly the moment
every request crosses the threshold. The log is therefore a fixed-size
ring: a burst of N slow requests costs O(capacity) memory however large
N gets (``tests/test_obs.py`` regression-tests this), with ``recorded``
counting every entry ever admitted so the drop is visible.

The log is always on (like the histograms, it is bookkeeping, not a
trace); entries carry the trace id when the request happened to be
sampled, so a slow entry can be followed into ``GET /v1/trace/<id>``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from . import clock


class SlowQueryLog:
    """Fixed-capacity ring of the most recent over-threshold requests."""

    def __init__(self, capacity: int, threshold_ms: float) -> None:
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Entries ever admitted (monotone; ``recorded - len(self)`` fell
        #: off the ring).
        self.recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def record(
        self,
        *,
        stage: str,
        duration_s: float,
        status: str = "OK",
        trace_id: str | None = None,
        source: int | None = None,
    ) -> bool:
        """Admit one finished request; under-threshold ones are ignored."""
        duration_ms = duration_s * 1000.0
        if duration_ms < self.threshold_ms:
            return False
        entry = {
            "stage": stage,
            "duration_ms": duration_ms,
            "status": status,
            "trace_id": trace_id,
            "source": source,
            "at": clock.now(),
        }
        with self._lock:
            self._ring.append(entry)
            self.recorded += 1
        return True

    def entries(self, threshold_ms: float | None = None) -> list[dict[str, Any]]:
        """Retained entries (slowest-threshold filterable), newest last."""
        with self._lock:
            entries = [dict(entry) for entry in self._ring]
        if threshold_ms is not None:
            entries = [e for e in entries if e["duration_ms"] >= threshold_ms]
        return entries

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threshold_ms": self.threshold_ms,
                "depth": len(self._ring),
                "recorded": self.recorded,
            }
