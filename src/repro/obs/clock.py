"""The single monotonic clock every repro timing reads.

``time.perf_counter`` on Linux is ``CLOCK_MONOTONIC``: it never jumps
backwards, ticks at sub-microsecond resolution, and — crucial for the
cluster tier — reads the *same kernel clock in every process on the
machine*, so a span timestamped on a replica worker lines up directly
against spans timestamped on the coordinator when a trace is stitched
together across the pipes.

Everything in this library that measures a duration (:mod:`repro.obs`
spans, :class:`repro.utils.timer.Timer`, the gateways, the serving
engine, the benchmarks) imports :func:`now` from here, so there is
exactly one time source to reason about and serve/bench timings are
directly comparable.
"""

from __future__ import annotations

import time

#: Read the monotonic clock (seconds as a float since an arbitrary epoch).
now = time.perf_counter
