"""Cumulative per-stage latency histograms — the Prometheus surface.

Point-in-time percentile gauges (what ``/v1/metrics`` exported before
this module) are not aggregatable: two scrapes cannot be combined, and a
p999 computed over a sliding sample window silently forgets the spike
that triggered the page. Cumulative histograms are the standard fix —
monotone ``_bucket``/``_sum``/``_count`` series that Prometheus can
``rate()`` and ``histogram_quantile()`` over any window.

The registry here is **always on** (it is a pile of counters, not a
trace): the gateways feed it per-request and queue-wait observations on
every request whether or not tracing is enabled, and every *sampled*
span finish feeds the stage named by the span. That is what makes the
ISSUE's "Prometheus and traces can never disagree" hold — both read the
same observations.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

#: Upper bounds (seconds, ``le``) of the latency buckets: log-spaced from
#: 100 microseconds (a hot cached top-k) to 60 seconds (a wedged replica
#: hitting its response timeout), plus the implicit ``+Inf`` overflow.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Histogram:
    """One stage's cumulative latency distribution.

    ``counts[i]`` is the number of observations in ``(bounds[i-1],
    bounds[i]]``; the final slot is the ``+Inf`` overflow. Cumulative
    (Prometheus ``le``) values are derived at render time.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.sum += seconds
        self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts (the ``le`` series, +Inf last)."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot (travels in ``/v1/stats`` under ``obs``)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class HistogramRegistry:
    """Thread-safe ``stage name -> Histogram`` map.

    Stage names are dot-paths (``request.top_k``, ``queue.wait``,
    ``engine.query``, ``wal.append`` — see ``docs/observability.md`` for
    the full taxonomy); they become the ``stage`` label of the single
    ``repro_latency_seconds`` Prometheus family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, Histogram] = {}

    def observe(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = Histogram()
            histogram.observe(seconds)

    def get(self, stage: str) -> Histogram | None:
        with self._lock:
            return self._stages.get(stage)

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe ``{stage: histogram}`` snapshot, stages sorted."""
        with self._lock:
            return {
                stage: self._stages[stage].to_dict()
                for stage in sorted(self._stages)
            }
