"""``repro.obs`` — end-to-end tracing, structured events, profiling.

The observability layer threaded through the whole stack (HTTP front
door → typed gateway → admission queue → scheduler → cluster pipes →
serving engine → push kernels → WAL). One process-wide
:class:`~repro.obs.trace.Tracer` collects:

* **Spans** — sampled request traces in a bounded ring buffer, served by
  ``GET /v1/trace/<id>`` and exportable to Chrome ``trace_event`` format
  (``repro trace export``).
* **Histograms** — always-on cumulative per-stage latency distributions
  (the ``repro_latency_seconds`` Prometheus family at ``/v1/metrics``).
* **Slow-query log** — always-on bounded ring of over-threshold
  requests (``GET /v1/slow``).

Usage, front door to kernel::

    ing = obs.ingress("http.request", route="/v1/query")
    with ing:                      # ing.ctx is None when unsampled
        obs.attach(request, ing.ctx)
        response = gateway.submit(request)

    # anywhere below, under an activated context:
    with obs.span("engine.query", source=source) as span:
        result = engine.query(source)
        span.set(iterations=result.iterations)

Everything degrades to a few attribute checks when tracing is disabled
or the request unsampled — see ``docs/observability.md`` and
``benchmarks/bench_obs.py`` for the overhead gate.
"""

from __future__ import annotations

from typing import Any

from ..config import ObsConfig
from . import clock
from .export import (
    chrome_trace,
    export_chrome_trace,
    format_tree,
    read_jsonl,
    span_children,
)
from .histograms import DEFAULT_BUCKETS, Histogram, HistogramRegistry
from .slowlog import SlowQueryLog
from .trace import (
    NOOP_SPAN,
    TRACE_ATTR,
    TRACER,
    Ingress,
    Span,
    TraceContext,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "HistogramRegistry",
    "Ingress",
    "NOOP_SPAN",
    "ObsConfig",
    "SlowQueryLog",
    "Span",
    "TRACER",
    "TRACE_ATTR",
    "TraceContext",
    "Tracer",
    "activate",
    "attach",
    "chrome_trace",
    "clock",
    "configure",
    "current",
    "drain",
    "event",
    "export_chrome_trace",
    "format_tree",
    "ingest_spans",
    "ingress",
    "measured",
    "observe",
    "read_jsonl",
    "record_span",
    "reset",
    "slow",
    "snapshot",
    "span",
    "span_children",
    "trace",
    "trace_of",
]


# -- facade over the process-wide tracer -------------------------------- #

def configure(config: ObsConfig, *, outbox: bool = False) -> None:
    """Install ``config`` process-wide (dropping collected state)."""
    TRACER.configure(config, outbox=outbox)


def reset() -> None:
    """Back to disabled defaults; tests call this between cases."""
    TRACER.reset()


def enabled() -> bool:
    return TRACER.enabled


def ingress(name: str, **attrs: Any):
    """Mint (or decline, per sampling) a trace at a front door."""
    return TRACER.ingress(name, **attrs)


def span(name: str, **attrs: Any):
    """Open a child span under the active context; no-op outside one."""
    return TRACER.span(name, **attrs)


def activate(ctx: TraceContext | None):
    """Adopt a shipped/attached context for the duration of a block."""
    return TRACER.activate(ctx)


def current() -> TraceContext | None:
    """The context a child span would attach under right now."""
    return TRACER.current()


def measured(stage: str, *, trace_id: str | None = None, source: int | None = None):
    """Always-on request envelope: stage histogram + slow-query log."""
    return TRACER.measured(stage, trace_id=trace_id, source=source)


def record_span(
    name: str,
    *,
    start: float,
    duration: float,
    ctx: TraceContext | None = None,
    observe: bool = True,
    **attrs: Any,
) -> None:
    """Record an already-timed interval as a finished span."""
    TRACER.record_span(
        name, start=start, duration=duration, ctx=ctx, observe=observe, **attrs
    )


def event(name: str, **attrs: Any) -> None:
    """Attach a point event (e.g. ``replica-crashed``) to the open span."""
    TRACER.event(name, **attrs)


def observe(stage: str, seconds: float) -> None:
    """Feed one observation to the always-on per-stage histograms."""
    TRACER.observe(stage, seconds)


def drain() -> list[dict[str, Any]]:
    """Pop finished spans from the outbox (replica workers, per frame)."""
    return TRACER.drain()


def ingest_spans(records: list[dict[str, Any]]) -> None:
    """Adopt spans that finished in another process (coordinator side)."""
    TRACER.ingest_spans(records)


def trace(trace_id: str) -> list[dict[str, Any]]:
    """All retained spans of a trace, by start time (``/v1/trace/<id>``)."""
    return TRACER.trace(trace_id)


def slow(threshold_ms: float | None = None) -> list[dict[str, Any]]:
    """Slow-query log entries (``/v1/slow``)."""
    return TRACER.slow(threshold_ms)


def snapshot() -> dict[str, Any]:
    """The ``obs`` stats section: tracing counters, slow log, histograms."""
    return TRACER.snapshot()


# -- request plumbing ---------------------------------------------------- #

def attach(request: Any, ctx: TraceContext | None) -> None:
    """Stash a context on a (frozen) request dataclass.

    Uses ``object.__setattr__``: the context rides the instance
    ``__dict__`` (so it pickles across cluster pipes) without becoming a
    dataclass field — construction sites and generated ``__eq__`` (which
    read-coalescing dedup relies on) are untouched.
    """
    if ctx is not None:
        object.__setattr__(request, TRACE_ATTR, ctx)


def trace_of(request: Any) -> TraceContext | None:
    """The context attached to a request, if it is part of a sampled trace."""
    return getattr(request, TRACE_ATTR, None)
