"""Real OS-process BSP backend for the parallel push (demonstration).

Python's GIL prevents shared-memory *thread* parallelism, so this backend
shows how the algorithm maps onto bulk-synchronous *process* parallelism:
each iteration, the frontier is sharded across workers; every worker
computes its shard's neighbor propagation as a partial delta vector; the
coordinator reduces the partials (the commutative equivalent of atomic
adds) and generates the next frontier.

Only the snapshot (VANILLA / DUPDETECT) session order is supported —
eager propagation is defined by *intra-iteration* visibility of
concurrent writes, which BSP message passing cannot express. Requesting
an eager variant raises :class:`BackendError`.

On a single-core container this is strictly slower than the numpy
backend; it exists to demonstrate and test the decomposition, not to win
benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..config import Phase, PPRConfig
from ..errors import BackendError, ConvergenceError
from ..graph.delta import CSRView
from ..core.state import PPRState
from ..core.stats import IterationRecord, PushStats

# Worker-process globals installed by the pool initializer; shipping the
# snapshot once per pool instead of once per task keeps the demo usable.
# Workers only touch the narrow snapshot interface (``gather_in_edges``
# and ``dout``), so a frozen CSR and a delta overlay view both work.
_WORKER_CSR: CSRView | None = None
_WORKER_ALPHA: float = 0.15


def _init_worker(csr: CSRView, alpha: float) -> None:
    global _WORKER_CSR, _WORKER_ALPHA
    _WORKER_CSR = csr
    _WORKER_ALPHA = alpha


def _propagate_shard(args: tuple[np.ndarray, np.ndarray]) -> tuple[np.ndarray, np.ndarray, int]:
    """Compute one shard's (targets, deltas) contribution."""
    shard, weights = args
    assert _WORKER_CSR is not None, "worker pool not initialized"
    src_idx, targets = _WORKER_CSR.gather_in_edges(shard)
    if targets.size == 0:
        return targets, np.empty(0, dtype=np.float64), 0
    deltas = (1.0 - _WORKER_ALPHA) * weights[src_idx] / _WORKER_CSR.dout[targets]
    return targets, deltas, int(targets.size)


def multiprocess_push(
    state: PPRState,
    csr: CSRView,
    config: PPRConfig,
    *,
    seeds: Iterable[int] | None = None,
    stats: PushStats | None = None,
) -> PushStats:
    """Run the snapshot parallel push with a process pool."""
    if config.variant.eager:
        raise BackendError(
            "the multiprocess backend supports snapshot variants only"
            " (VANILLA / DUPDETECT); eager propagation needs shared memory"
        )
    stats = stats if stats is not None else PushStats()
    epsilon = config.epsilon
    workers = min(config.workers, 8)  # pool startup is expensive; cap it

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(csr, config.alpha),
    ) as pool:
        for phase in (Phase.POS, Phase.NEG):
            _run_phase(state, csr, phase, config, seeds, stats, pool, workers)
    if state.residual_linf() > epsilon:  # pragma: no cover - safety net
        raise ConvergenceError(stats.num_iterations, state.residual_linf())
    return stats


def _run_phase(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    seeds: Iterable[int] | None,
    stats: PushStats,
    pool: ProcessPoolExecutor,
    workers: int,
) -> None:
    from ..core.push_vectorized import _exceeds, _prepare_seeds

    epsilon = config.epsilon
    alpha = config.alpha
    local_detect = config.variant.local_duplicate_detection
    r = state.r
    frontier = _prepare_seeds(state, phase, epsilon, seeds)
    rounds = 0
    while frontier.size:
        rec = IterationRecord(phase=phase, frontier_size=int(frontier.size))
        weights = r[frontier].copy()
        state.p[frontier] += alpha * weights
        r[frontier] = 0.0
        rec.residual_pushed += float(np.abs(weights).sum())

        shards = np.array_split(np.arange(len(frontier)), min(workers, len(frontier)))
        tasks = [(frontier[idx], weights[idx]) for idx in shards if idx.size]
        touched_pieces: list[np.ndarray] = []
        before_lookup = r  # zeros at frontier already applied
        all_targets: list[np.ndarray] = []
        all_deltas: list[np.ndarray] = []
        for targets, deltas, traversed in pool.map(_propagate_shard, tasks):
            rec.edge_traversals += traversed
            rec.atomic_adds += traversed
            if targets.size:
                all_targets.append(targets)
                all_deltas.append(deltas)
        if all_targets:
            targets = np.concatenate(all_targets)
            deltas = np.concatenate(all_deltas)
            touched = np.unique(targets)
            before = before_lookup[touched].copy()
            np.add.at(r, targets, deltas)
            after = r[touched]
            passes_after = _exceeds(after, phase, epsilon)
            if local_detect:
                new = touched[~_exceeds(before, phase, epsilon) & passes_after]
            else:
                new = touched[passes_after]
                rec.dedup_checks += int(passes_after.sum())
            rec.enqueue_attempts += int(passes_after.sum())
            touched_pieces.append(new)
        frontier = (
            np.sort(np.concatenate(touched_pieces))
            if touched_pieces
            else np.empty(0, dtype=np.int64)
        )
        rec.enqueued = int(frontier.size)
        stats.record(rec)
        rounds += 1
        if rounds > config.max_iterations:
            raise ConvergenceError(rounds, state.residual_linf())
