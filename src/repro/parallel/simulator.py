"""Analytic resource-consumption profiles (Figure 9 substitution).

The paper profiles with nvprof (GPU) and PAPI (CPU). Those counters are
deterministic functions of how much work each push iteration issues and
how large its touched memory footprint is — both of which the operation
trace records. The models below are explicit, monotone, and calibrated to
land in the ranges the paper plots:

* **Warp occupancy** rises with per-iteration work (more warps eligible).
* **Global load efficiency** falls as frontiers grow: neighbor gathers
  scatter across the id space, reducing coalescing.
* **L2/L3 miss rates** rise as the per-iteration working set outgrows the
  cache capacities.
* **Stall ratio** tracks memory pressure (miss rates).
"""

from __future__ import annotations

from ..core.stats import PushStats
from .cost_model import CPUCostModel, GPUCostModel
from .metrics import CPUProfile, GPUProfile

#: Bytes touched per traversed edge: residual read-modify-write (8B float
#: plus index) — the unit of the working-set model.
BYTES_PER_EDGE = 16
BYTES_PER_VERTEX = 24

#: Cache capacities of the paper's Xeon E7-4820 (per-core L2, shared L3).
L2_BYTES = 256 * 1024
L3_BYTES = 25 * 1024 * 1024


def _work_weighted(stats: PushStats, values: list[float]) -> float:
    weights = [rec.frontier_size + rec.edge_traversals for rec in stats.iterations]
    total = sum(weights)
    if total == 0:
        return 0.0
    return sum(w * v for w, v in zip(weights, values)) / total


def profile_gpu(stats: PushStats, model: GPUCostModel | None = None) -> GPUProfile:
    """Simulated nvprof metrics for a push trace."""
    model = model or GPUCostModel()
    occupancies: list[float] = []
    efficiencies: list[float] = []
    for rec in stats.iterations:
        thread_ops = rec.frontier_size + rec.edge_traversals
        occupancies.append(max(model.occupancy(thread_ops), 0.05))
        # Coalescing: small gathers fit in few cache lines; large scattered
        # gathers approach the device's uncoalesced floor (~25%).
        scatter = rec.edge_traversals
        efficiencies.append(0.25 + 0.60 / (1.0 + scatter / 50_000.0))
    return GPUProfile(
        warp_occupancy=_work_weighted(stats, occupancies),
        global_load_efficiency=_work_weighted(stats, efficiencies),
    )


def _miss_rate(working_set: float, cache_bytes: float, floor: float) -> float:
    """Saturating miss-rate model: ~floor when resident, ->1 when far over."""
    if working_set <= 0:
        return floor
    pressure = working_set / cache_bytes
    return floor + (1.0 - floor) * pressure / (1.0 + pressure)


def profile_cpu(stats: PushStats, model: CPUCostModel | None = None) -> CPUProfile:
    """Simulated PAPI metrics for a push trace."""
    model = model or CPUCostModel()
    l2: list[float] = []
    l3: list[float] = []
    for rec in stats.iterations:
        working_set = (
            rec.frontier_size * BYTES_PER_VERTEX + rec.edge_traversals * BYTES_PER_EDGE
        )
        # Each core sees roughly its shard of the iteration's footprint.
        per_core = working_set / model.workers
        l2.append(_miss_rate(per_core, L2_BYTES, floor=0.05))
        l3.append(_miss_rate(working_set, L3_BYTES, floor=0.02))
    l2_rate = _work_weighted(stats, l2)
    l3_rate = _work_weighted(stats, l3)
    stall = 0.15 + 0.5 * l2_rate + 0.3 * l3_rate
    return CPUProfile(
        l2_miss_rate=l2_rate,
        l3_miss_rate=l3_rate,
        stall_ratio=min(stall, 0.95),
    )
