"""Simulated parallel hardware: cost models, profiling, multiprocess backend.

The paper runs on a 40-core Xeon (CilkPlus) and a GTX TITAN X (CUDA);
neither true shared-memory threading (GIL) nor a GPU is available to a
pure-Python reproduction. The push engines therefore emit exact operation
traces (:class:`repro.core.stats.PushStats`) and the cost models here map
those traces onto simulated hardware latency — preserving who-wins and the
trends, which are functions of the trace, not of the constants.
"""

from .cost_model import (
    CPUCostModel,
    GPUCostModel,
    LigraCostModel,
    MonteCarloCostModel,
)
from .metrics import ProfilingReport
from .multiproc import multiprocess_push
from .simulator import profile_cpu, profile_gpu

__all__ = [
    "CPUCostModel",
    "GPUCostModel",
    "LigraCostModel",
    "MonteCarloCostModel",
    "ProfilingReport",
    "multiprocess_push",
    "profile_cpu",
    "profile_gpu",
]
