"""Hardware cost models: operation traces -> simulated seconds.

Each model charges the operations the corresponding implementation would
execute:

* :class:`CPUCostModel` — multi-core CPU (the paper's CPU-MT): per
  iteration, two parallel sessions separated by barriers; work divides
  across ``workers``; atomic residual additions pay an overhead multiplier;
  global duplicate detection pays a synchronized check per enqueue attempt
  that contends on the shared frontier queue.
* :class:`GPUCostModel` — the paper's GPU: kernel-launch latency per
  session dominates small frontiers; massive parallelism absorbs large
  ones; occupancy scales with available work.
* :class:`MonteCarloCostModel` — incremental random-walk maintenance:
  per-step regeneration cost plus inverted-index maintenance (the paper
  attributes Monte-Carlo's slowness to exactly this bookkeeping).
* :class:`LigraCostModel` — a generic vertex-centric framework: the same
  work as CPU-MT but with an abstraction-overhead multiplier, a dense/
  sparse frontier scan, and flag-based duplicate removal (it cannot use
  eager propagation or local duplicate detection — Section 5.3's point).

Constants are calibrated (see EXPERIMENTS.md) so that the *sequential*
model reproduces realistic single-core push throughput (~50M edge ops/s)
and the relative magnitudes of barrier/atomic/launch overheads follow the
hardware literature. Paper-vs-measured ratios are reported per figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.stats import PushStats, SequentialPushStats


@dataclass(frozen=True)
class CPUCostModel:
    """Multi-core CPU latency model (also covers 1-core sequential runs)."""

    workers: int = 40
    seconds_per_push: float = 5.0e-8
    seconds_per_edge: float = 2.0e-8
    atomic_overhead: float = 2.0
    seconds_per_dedup_check: float = 6.0e-8
    dedup_contention: float = 2.0
    barrier_seconds: float = 4.0e-6
    seconds_per_restore: float = 1.5e-7
    dispatch_seconds: float = 2.0e-6

    def restore_latency(self, num_updates: int) -> float:
        """Restore-invariant is a short serial prologue (k tiny updates)."""
        return num_updates * self.seconds_per_restore

    def sequential_latency(
        self, stats: SequentialPushStats, *, num_updates: int = 0
    ) -> float:
        """Latency of Algorithm 2 on one core: no barriers, no atomics."""
        return (
            self.restore_latency(num_updates)
            + stats.pushes * self.seconds_per_push
            + stats.edge_traversals * self.seconds_per_edge
        )

    def parallel_latency(self, stats: PushStats, *, num_updates: int = 0) -> float:
        """Latency of the parallel push with ``workers`` cores."""
        total = self.restore_latency(num_updates)
        for rec in stats.iterations:
            work = (
                rec.frontier_size * self.seconds_per_push
                + rec.edge_traversals * self.seconds_per_edge * self.atomic_overhead
            )
            dedup = (
                rec.dedup_checks
                * self.seconds_per_dedup_check
                * self.dedup_contention
            )
            total += (
                self.dispatch_seconds
                + 2.0 * self.barrier_seconds  # one per parallel session
                + (work + dedup) / self.workers
            )
        return total

    def with_workers(self, workers: int) -> "CPUCostModel":
        """Same constants, different core count (Figure 10 sweeps this)."""
        return CPUCostModel(
            workers=workers,
            seconds_per_push=self.seconds_per_push,
            seconds_per_edge=self.seconds_per_edge,
            atomic_overhead=self.atomic_overhead,
            seconds_per_dedup_check=self.seconds_per_dedup_check,
            dedup_contention=self.dedup_contention,
            barrier_seconds=self.barrier_seconds,
            seconds_per_restore=self.seconds_per_restore,
            dispatch_seconds=self.dispatch_seconds,
        )


@dataclass(frozen=True)
class GPUCostModel:
    """GPU latency model (GTX TITAN X class device)."""

    sm_count: int = 24
    threads_per_sm: int = 2048
    seconds_per_push: float = 2.0e-9
    seconds_per_edge: float = 1.5e-9
    atomic_overhead: float = 4.0
    seconds_per_dedup_check: float = 2.5e-8
    #: Synchronized enqueues funnel through a shared queue tail: on a GPU
    #: they serialize to roughly warp-width effective parallelism.
    dedup_parallelism: int = 32
    kernel_launch_seconds: float = 8.0e-6
    seconds_per_restore: float = 1.0e-7
    #: Work (in thread-ops) needed to reach full occupancy.
    full_occupancy_work: int = 1 << 16

    @property
    def max_parallelism(self) -> int:
        return self.sm_count * self.threads_per_sm

    def occupancy(self, thread_ops: int) -> float:
        """Achieved occupancy grows with available per-iteration work."""
        if thread_ops <= 0:
            return 0.0
        return min(1.0, thread_ops / self.full_occupancy_work)

    def restore_latency(self, num_updates: int) -> float:
        return num_updates * self.seconds_per_restore

    def parallel_latency(self, stats: PushStats, *, num_updates: int = 0) -> float:
        total = self.restore_latency(num_updates)
        for rec in stats.iterations:
            thread_ops = rec.frontier_size + rec.edge_traversals
            occ = max(self.occupancy(thread_ops), 1.0 / 64.0)
            effective = max(1.0, self.max_parallelism * occ)
            work = (
                rec.frontier_size * self.seconds_per_push
                + rec.edge_traversals * self.seconds_per_edge * self.atomic_overhead
            )
            dedup = (
                rec.dedup_checks * self.seconds_per_dedup_check / self.dedup_parallelism
            )
            total += 2.0 * self.kernel_launch_seconds + work / effective + dedup
        return total


@dataclass(frozen=True)
class MonteCarloCostModel:
    """Incremental Monte-Carlo maintenance latency model (CPU, parallel).

    Charged per regenerated-walk step: the step itself plus the inverted
    index bookkeeping (remove old trace entries, insert new ones), which
    requires atomic access to shared structures.
    """

    workers: int = 40
    seconds_per_step: float = 6.0e-8
    seconds_per_index_op: float = 4.0e-7
    #: The shared walk store and inverted index are updated with atomic
    #: RMW operations under heavy contention (Section 5.3's analysis of
    #: Monte-Carlo's overheads); parallel efficiency degrades accordingly.
    atomic_contention: float = 3.0
    dispatch_seconds: float = 2.0e-6

    def latency(self, walk_steps: int, index_ops: int) -> float:
        work = (
            walk_steps * self.seconds_per_step
            + index_ops * self.seconds_per_index_op
        ) * self.atomic_contention
        return self.dispatch_seconds + work / self.workers


@dataclass(frozen=True)
class LigraCostModel:
    """Vertex-centric framework model: CPU-MT plus abstraction overheads."""

    cpu: CPUCostModel = CPUCostModel()
    framework_overhead: float = 1.8
    seconds_per_flag_op: float = 4.0e-8
    #: edgeMap switches to the dense representation when the frontier's
    #: out-edge volume exceeds m / dense_threshold_divisor (Ligra uses 20).
    dense_threshold_divisor: int = 20
    seconds_per_dense_scan_vertex: float = 6.0e-9

    def parallel_latency(
        self,
        stats: PushStats,
        *,
        num_vertices: int,
        num_edges: int,
        num_updates: int = 0,
    ) -> float:
        total = self.cpu.restore_latency(num_updates)
        dense_cutoff = max(1, num_edges // self.dense_threshold_divisor)
        for rec in stats.iterations:
            work = (
                rec.frontier_size * self.cpu.seconds_per_push
                + rec.edge_traversals
                * self.cpu.seconds_per_edge
                * self.cpu.atomic_overhead
            ) * self.framework_overhead
            # removeDuplicates: one flag write + read per enqueue attempt.
            dedup = rec.enqueue_attempts * self.seconds_per_flag_op * 2.0
            if rec.edge_traversals > dense_cutoff:
                # Dense mode scans every vertex to build the next frontier.
                work += num_vertices * self.seconds_per_dense_scan_vertex
            total += (
                self.cpu.dispatch_seconds
                + 2.0 * self.cpu.barrier_seconds
                + (work + dedup) / self.cpu.workers
            )
        return total
