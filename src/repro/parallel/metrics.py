"""Profiling-metric dataclasses (the paper's Table 4 metrics).

Wall-time measurements feeding these reports must read :func:`now` —
re-exported from :mod:`repro.obs.clock`, the single monotonic source
shared by tracer spans, the latency histograms, and
:class:`repro.utils.timer.Timer` — so profiling numbers are directly
comparable to bench and serve timings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.clock import now

__all__ = ["CPUProfile", "GPUProfile", "ProfilingReport", "now"]


@dataclass(frozen=True)
class GPUProfile:
    """GPU metrics reported in Figure 9.

    Attributes
    ----------
    warp_occupancy:
        Achieved warp occupancy (WO): average active warps per cycle over
        the maximum, weighted by per-iteration work.
    global_load_efficiency:
        Requested / maximum global-memory load throughput (GLD); degrades
        as larger frontiers scatter accesses.
    """

    warp_occupancy: float
    global_load_efficiency: float


@dataclass(frozen=True)
class CPUProfile:
    """CPU metrics reported in Figure 9 (PAPI counters in the paper).

    Attributes
    ----------
    l2_miss_rate:
        L2 data-cache miss rate (L2DCM / accesses).
    l3_miss_rate:
        L3 cache miss rate (L3CM / accesses).
    stall_ratio:
        Fraction of cycles stalled on resources (STL).
    """

    l2_miss_rate: float
    l3_miss_rate: float
    stall_ratio: float


@dataclass(frozen=True)
class ProfilingReport:
    """Combined per-run profile (either side may be absent)."""

    gpu: GPUProfile | None = None
    cpu: CPUProfile | None = None
