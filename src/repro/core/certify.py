"""Error certification and convergence diagnostics.

The local update scheme's guarantee, ``|P_s(v) - pi_v(s)| <= max_u
|R_s(u)|``, certifies more than point estimates: it certifies *rankings*.
If the worst-case intervals ``[P(v) - eps, P(v) + eps]`` of two vertices
do not overlap, their exact order is known. This module turns the raw
state into such certified facts:

* :func:`error_bound` — the rigorous per-vertex error bound implied by the
  current residuals (tighter than ``epsilon`` right after convergence);
* :func:`certified_top_k` — the top-k ranking with a per-entry flag
  telling whether the *position* is provably correct;
* :func:`residual_decay` — per-iteration residual-mass series from a push
  trace, the quantity Lemma 4 compares between schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .state import PPRState
from .stats import PushStats


def error_bound(state: PPRState) -> float:
    """Rigorous sup-norm error bound of the current estimate.

    Derivation: with ``e = p* - P``, the invariant gives
    ``e = alpha R + (1 - alpha) M e`` with ``||M||_inf <= 1``, hence
    ``||e||_inf <= ||R||_inf``. Valid whenever the invariant holds (the
    engines preserve it at every step, converged or not).
    """
    return state.residual_linf()


@dataclass(frozen=True)
class CertifiedEntry:
    """One row of a certified ranking."""

    vertex: int
    estimate: float
    lower: float
    upper: float
    position_certified: bool


def certified_top_k(state: PPRState, k: int) -> list[CertifiedEntry]:
    """Top-k vertices with certificates on their ranking positions.

    Entry ``i`` is *position-certified* when its lower bound clears the
    upper bound of entry ``i+1`` (and, for the last entry, the best upper
    bound among all remaining vertices). Certified entries provably hold
    their exact rank in the true PPR ordering.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    bound = error_bound(state)
    ranked = state.top_k(min(k + 1, len(state.p)))
    # The strongest challenger for the k-th slot among non-top vertices.
    challenger = ranked[k][1] + bound if len(ranked) > k else -np.inf
    entries: list[CertifiedEntry] = []
    top = ranked[:k]
    for i, (vertex, value) in enumerate(top):
        lower = value - bound
        next_upper = top[i + 1][1] + bound if i + 1 < len(top) else challenger
        entries.append(
            CertifiedEntry(
                vertex=vertex,
                estimate=value,
                lower=lower,
                upper=value + bound,
                position_certified=bool(lower > next_upper),
            )
        )
    return entries


def certified_comparison(state: PPRState, u: int, v: int) -> int | None:
    """Provable order of ``pi_u(s)`` vs ``pi_v(s)``: 1, -1, or None.

    Returns 1 when ``u`` is provably larger, -1 when provably smaller,
    ``None`` when the error intervals overlap (undecidable at this eps).
    """
    bound = error_bound(state)
    pu, pv = state.estimate(u), state.estimate(v)
    if pu - bound > pv + bound:
        return 1
    if pv - bound > pu + bound:
        return -1
    return None


def residual_decay(stats: PushStats) -> list[float]:
    """Residual mass pushed per iteration — the convergence trajectory.

    Decreasing absolute values indicate the push is draining mass;
    comparing two variants' series on the same workload visualizes the
    parallel-loss gap (Lemma 4).
    """
    return [rec.residual_pushed for rec in stats.iterations]


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of a push run for dashboards/logs."""

    iterations: int
    total_pushes: int
    total_edge_traversals: int
    peak_frontier: int
    mass_drained: float
    final_error_bound: float

    def __str__(self) -> str:
        return (
            f"converged in {self.iterations} iterations: "
            f"{self.total_pushes} pushes, {self.total_edge_traversals} edge ops, "
            f"peak frontier {self.peak_frontier}, "
            f"error bound {self.final_error_bound:.2e}"
        )


def convergence_report(state: PPRState, stats: PushStats) -> ConvergenceReport:
    """Bundle a push trace and the resulting state into one report."""
    return ConvergenceReport(
        iterations=stats.num_iterations,
        total_pushes=stats.pushes,
        total_edge_traversals=stats.edge_traversals,
        peak_frontier=stats.max_frontier,
        mass_drained=float(sum(residual_decay(stats))),
        final_error_bound=error_bound(state),
    )
