"""Core dynamic-PPR machinery: state, invariant, pushes, tracker, theory."""

from .analysis import (
    parallel_bound_directed,
    parallel_bound_undirected,
    residual_change_bound,
    sequential_bound,
)
from .certify import (
    certified_comparison,
    certified_top_k,
    convergence_report,
    error_bound,
    residual_decay,
)
from .groundtruth import ground_truth_linear, ground_truth_ppr
from .hub_index import DynamicHubIndex, select_hubs
from .invariant import check_invariant, invariant_violation, restore_invariant
from .push_parallel import parallel_local_push
from .push_sequential import sequential_local_push
from .state import PPRState
from .stats import BatchStats, IterationRecord, PushStats
from .tracker import DynamicPPRTracker, MultiSourceTracker

__all__ = [
    "BatchStats",
    "DynamicHubIndex",
    "certified_comparison",
    "certified_top_k",
    "convergence_report",
    "error_bound",
    "residual_decay",
    "select_hubs",
    "DynamicPPRTracker",
    "IterationRecord",
    "MultiSourceTracker",
    "PPRState",
    "PushStats",
    "check_invariant",
    "ground_truth_linear",
    "ground_truth_ppr",
    "invariant_violation",
    "restore_invariant",
    "parallel_bound_directed",
    "parallel_bound_undirected",
    "parallel_local_push",
    "residual_change_bound",
    "sequential_bound",
    "sequential_local_push",
]
