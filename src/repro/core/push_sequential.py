"""Sequential local push (Algorithm 2) and the CPU-Base / CPU-Seq drivers.

``SeqPush(u)`` moves ``alpha`` of ``u``'s residual into its estimate and
spreads the remaining ``1 - alpha`` over ``u``'s *in*-neighbors ``v``
scaled by ``1/dout(v)``. The positive phase drains residuals above
``epsilon``; the negative phase drains those below ``-epsilon``.

The push order is FIFO over activation events — this matches the paper's
Figure 3 walk-through (``v1, v2, v3, v4``) and is the natural work-list
implementation; any order yields a valid converged state.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from ..config import Phase, PPRConfig
from ..errors import ConvergenceError
from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from .invariant import restore_batch
from .state import PPRState
from .stats import BatchStats, RestoreStats, SequentialPushStats


def _candidate_seeds(
    state: PPRState,
    graph: DynamicDiGraph,
    seeds: Iterable[int] | None,
) -> list[int]:
    """Vertices that may be active: explicit seeds or a topology scan."""
    if seeds is None:
        return [int(v) for v in state.active_vertices(0.0) if graph.has_vertex(int(v))]
    unique: list[int] = []
    seen: set[int] = set()
    for v in seeds:
        if v not in seen:
            seen.add(v)
            unique.append(v)
    return unique


def _run_phase(
    state: PPRState,
    graph: DynamicDiGraph,
    phase: Phase,
    config: PPRConfig,
    seeds: Sequence[int],
    stats: SequentialPushStats,
) -> None:
    alpha = config.alpha
    epsilon = config.epsilon
    r = state.r
    p = state.p
    queue: deque[int] = deque(v for v in seeds if phase.exceeds(r[v], epsilon))
    queued = {v for v in queue}
    operations_budget = config.max_iterations
    while queue:
        u = queue.popleft()
        queued.discard(u)
        residual = r[u]
        if not phase.exceeds(residual, epsilon):
            continue  # drained below threshold since it was enqueued
        # SeqPush(u): lines 6-10 of Algorithm 2.
        p[u] += alpha * residual
        r[u] = 0.0
        stats.pushes += 1
        if stats.push_order is not None:
            stats.push_order.append(u)
        for v, mult in graph.in_neighbors(u):
            r[v] += (1.0 - alpha) * residual * mult / graph.out_degree(v)
            stats.edge_traversals += mult
            if phase.exceeds(r[v], epsilon) and v not in queued:
                queued.add(v)
                queue.append(v)
        if stats.pushes > operations_budget:
            raise ConvergenceError(stats.pushes, state.residual_linf())


def sequential_local_push(
    state: PPRState,
    graph: DynamicDiGraph,
    config: PPRConfig,
    *,
    seeds: Iterable[int] | None = None,
    record_order: bool = False,
) -> SequentialPushStats:
    """Run Algorithm 2 to convergence (``max |r| <= epsilon``).

    ``seeds`` narrows the initial active scan to vertices whose residual
    may exceed the threshold (e.g. those touched by restore-invariant);
    ``None`` scans every vertex. When ``record_order`` is set the stats
    carry the exact sequence of pushed vertices (used by the paper-example
    tests).
    """
    stats = SequentialPushStats(push_order=[] if record_order else None)
    state.ensure_capacity(graph.capacity)
    candidates = _candidate_seeds(state, graph, seeds)
    _run_phase(state, graph, Phase.POS, config, candidates, stats)
    _run_phase(state, graph, Phase.NEG, config, candidates, stats)
    return stats


def cpu_base_update(
    state: PPRState,
    graph: DynamicDiGraph,
    updates: Sequence[EdgeUpdate],
    config: PPRConfig,
) -> BatchStats:
    """CPU-Base (Section 5.1): synchronize on every single update.

    For each update: apply it, restore the invariant, then run the
    sequential push to full convergence before the next update — the
    state-of-the-art sequential baseline [49] the paper measures against.
    """
    batch = BatchStats(sequential_push=SequentialPushStats())
    for update in updates:
        touched, change = restore_batch(graph, state, [update], config.alpha)
        batch.restore.merge(RestoreStats(1, change))
        batch.sequential_push.merge(
            sequential_local_push(state, graph, config, seeds=touched)
        )
    return batch


def cpu_seq_update(
    state: PPRState,
    graph: DynamicDiGraph,
    updates: Sequence[EdgeUpdate],
    config: PPRConfig,
) -> BatchStats:
    """CPU-Seq (Section 5.1): batch restore, then one sequential push."""
    batch = BatchStats(sequential_push=SequentialPushStats())
    touched, change = restore_batch(graph, state, updates, config.alpha)
    batch.restore.merge(RestoreStats(len(updates), change))
    batch.sequential_push.merge(
        sequential_local_push(state, graph, config, seeds=touched)
    )
    return batch
