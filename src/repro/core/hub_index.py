"""Dynamic hub-vector index (the paper's Section 6 integration claim).

HubPPR [46] and the distributed scheme of Guo et al. [18] accelerate PPR
queries with *pre-computed PPR vectors of selected hub vertices*; the
paper argues its parallel local update "is helpful for both these two
works to maintain the indexed PPR vectors on dynamic graphs". This module
realizes exactly that integration: a :class:`DynamicHubIndex` selects the
top-degree vertices as hubs and keeps one ε-approximate contribution
vector per hub fresh under the update stream, sharing the graph and its
CSR snapshots across all hub trackers.

The index then answers two query families directly from maintained state:

* ``contribution(v, hub)`` — ``pi_v(hub)``, how strongly ``v`` contributes
  to / discovers the hub;
* ``rank_for_hub(hub, k)`` — the certified top-k contributors of a hub.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..config import Backend, PPRConfig
from ..errors import ConfigError, VertexError
from ..graph.csr import CSRGraph
from ..graph.delta import CSRView
from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from .certify import CertifiedEntry, certified_top_k
from .invariant import restore_invariant
from .push_parallel import parallel_local_push
from .state import PPRState
from .stats import PushStats


def select_hubs(graph: DynamicDiGraph, count: int) -> list[int]:
    """The ``count`` highest out-degree vertices (HubPPR's hub choice)."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    degrees = sorted(
        ((graph.out_degree(v), v) for v in graph.vertices()), reverse=True
    )
    return [v for _, v in degrees[:count]]


class DynamicHubIndex:
    """Maintain fresh PPR vectors for a set of hub vertices.

    Parameters
    ----------
    graph:
        The shared dynamic graph (all mutations flow through
        :meth:`apply_batch`).
    hubs:
        Explicit hub ids, or ``None`` to select ``num_hubs`` by degree.
    num_hubs:
        Number of hubs when auto-selecting.
    config:
        Push configuration shared by every hub vector.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        *,
        hubs: Sequence[int] | None = None,
        num_hubs: int = 8,
        config: PPRConfig | None = None,
    ) -> None:
        self.config = config or PPRConfig()
        self.graph = graph
        hub_list = list(hubs) if hubs is not None else select_hubs(graph, num_hubs)
        if not hub_list:
            raise ConfigError("at least one hub is required")
        if len(set(hub_list)) != len(hub_list):
            raise ConfigError("hubs must be distinct")
        for hub in hub_list:
            if not graph.has_vertex(hub):
                raise VertexError(hub, f"hub {hub} is not in the graph")
        self._states: dict[int, PPRState] = {}
        csr = self._snapshot()
        for hub in hub_list:
            state = PPRState.initial(hub, graph.capacity)
            parallel_local_push(state, graph, self.config, seeds=[hub], csr=csr)
            self._states[hub] = state
        self.batches_processed = 0

    def _snapshot(self) -> CSRGraph | None:
        if self.config.backend is Backend.PURE:
            return None
        return CSRGraph.from_digraph(self.graph)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def hubs(self) -> list[int]:
        return list(self._states)

    def is_hub(self, v: int) -> bool:
        return v in self._states

    def contribution(self, v: int, hub: int) -> float:
        """``pi_v(hub)`` from the maintained vector (<= eps from exact)."""
        return self._hub_state(hub).estimate(v)

    def rank_for_hub(self, hub: int, k: int) -> list[CertifiedEntry]:
        """Certified top-k contributors of ``hub``."""
        return certified_top_k(self._hub_state(hub), k)

    def hub_scores(self, v: int) -> dict[int, float]:
        """``v``'s contribution to every hub — a k-dimensional embedding."""
        return {hub: state.estimate(v) for hub, state in self._states.items()}

    def _hub_state(self, hub: int) -> PPRState:
        try:
            return self._states[hub]
        except KeyError:
            raise VertexError(hub, f"{hub} is not an indexed hub") from None

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def restore_applied(self, update: EdgeUpdate) -> None:
        """Restore every hub vector's invariant for one *already-applied* update.

        The serving layer (:class:`repro.serve.PPRService`) mutates the
        shared graph exactly once per update and then fans the restore out
        to every consumer; this is the hub-index half of that fan-out.
        ``self.graph`` must already reflect ``update``.
        """
        for state in self._states.values():
            restore_invariant(state, self.graph, update, self.config.alpha)

    def reconverge(
        self,
        seeds: Sequence[int],
        *,
        snapshot: CSRView | None = None,
    ) -> dict[int, PushStats]:
        """Push every hub vector back to convergence from ``seeds``.

        ``snapshot`` lets an outer layer share one CSR view of the current
        graph across the hub pushes (and its own resident sources) instead
        of rebuilding per consumer.
        """
        csr = snapshot if snapshot is not None else self._snapshot()
        results = {
            hub: parallel_local_push(
                state, self.graph, self.config, seeds=seeds, csr=csr
            )
            for hub, state in self._states.items()
        }
        self.batches_processed += 1
        return results

    def apply_batch(
        self,
        updates: Sequence[EdgeUpdate],
        *,
        snapshot: CSRView | None = None,
    ) -> dict[int, PushStats]:
        """Apply a stream batch and re-converge every hub vector.

        Graph mutation and invariant restoration happen once per update
        (restoration per hub); the per-hub pushes share one CSR snapshot
        (``snapshot`` when provided, else a fresh rebuild).
        """
        touched: list[int] = []
        for update in updates:
            self.graph.apply(update)
            self.restore_applied(update)
            touched.append(update.u)
        return self.reconverge(touched, snapshot=snapshot)

    # ------------------------------------------------------------------ #
    # persistence codec
    # ------------------------------------------------------------------ #

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialize every hub vector to plain arrays (bit-exact).

        Per-hub ``p``/``r`` arrays are concatenated with a ``lengths``
        array (states may sit at different capacities), hubs in index
        order. Rebuild with :meth:`from_arrays` against the same graph.
        """
        states = list(self._states.values())
        return {
            "hubs": np.fromiter(self._states, dtype=np.int64, count=len(states)),
            "lengths": np.array([len(s.p) for s in states], dtype=np.int64),
            "p": np.concatenate([s.p for s in states]) if states else np.empty(0),
            "r": np.concatenate([s.r for s in states]) if states else np.empty(0),
            "batches": np.int64(self.batches_processed),
        }

    @classmethod
    def from_arrays(
        cls,
        graph: DynamicDiGraph,
        arrays: dict[str, np.ndarray],
        config: PPRConfig | None = None,
    ) -> "DynamicHubIndex":
        """Rebuild an index serialized by :meth:`to_arrays`.

        The hub vectors are installed as-is — no initialization pushes
        run — so the rebuilt index is bit-identical to the serialized one.
        ``graph`` must be the graph version the vectors were saved at.
        """
        index = cls.__new__(cls)
        index.config = config or PPRConfig()
        index.graph = graph
        index._states = {}
        offset = 0
        for hub, length in zip(
            arrays["hubs"].tolist(), arrays["lengths"].tolist()
        ):
            state = PPRState.from_arrays(
                {
                    "source": np.int64(hub),
                    "p": arrays["p"][offset : offset + length],
                    "r": arrays["r"][offset : offset + length],
                }
            )
            offset += length
            index._states[hub] = state
        if not index._states:
            raise ConfigError("at least one hub is required")
        index.batches_processed = int(arrays["batches"])
        return index

    def total_index_entries(self) -> int:
        """Nonzero estimate entries across all hub vectors (index size)."""
        return int(sum(np.count_nonzero(state.p) for state in self._states.values()))

    def __repr__(self) -> str:
        return (
            f"DynamicHubIndex(hubs={len(self._states)},"
            f" n={self.graph.num_vertices}, batches={self.batches_processed})"
        )
