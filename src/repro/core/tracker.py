"""High-level dynamic-PPR maintenance API.

:class:`DynamicPPRTracker` owns a graph, one PPR state, and a
configuration; feed it update batches and it keeps the estimate vector
ε-approximate, returning the operation trace of every batch. This is the
object a downstream application uses; everything below it
(restore-invariant, push engines, CSR snapshots) is plumbing.

:class:`MultiSourceTracker` maintains many personalization sources over a
single shared graph — the pattern used by PPR-index maintenance systems
(HubPPR-style hub vectors) and by the theory checks that sum residual
changes over all sources.
"""

from __future__ import annotations

from ..obs import clock
from collections.abc import Iterable, Sequence

import numpy as np

from ..config import Backend, PPRConfig, SnapshotStrategy
from ..errors import ConfigError
from ..graph.csr import CSRGraph
from ..graph.delta import DEFAULT_OVERLAY_THRESHOLD, CSRView, DeltaCSRGraph
from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from .groundtruth import ground_truth_ppr, max_estimate_error
from .invariant import invariant_violation, restore_invariant
from .push_parallel import parallel_local_push
from .push_sequential import sequential_local_push
from .state import PPRState
from .stats import BatchStats, PushStats, RestoreStats


class DynamicPPRTracker:
    """Maintain an ε-approximate PPR vector for one source on a dynamic graph.

    Parameters
    ----------
    graph:
        The initial graph. The tracker takes ownership: all further
        mutations must flow through :meth:`apply_batch` so the invariant
        stays in sync. The estimate is computed from scratch on
        construction (initial state ``p = 0``, ``r = e_s``, then a push).
    source:
        Personalization vertex ``s``.
    config:
        Algorithm/backend configuration.
    sequential:
        Use the sequential push (Algorithm 2) instead of the parallel
        push — this is how the CPU-Seq baseline is expressed at this
        level. (CPU-Base additionally pushes after every single update;
        see :func:`repro.core.push_sequential.cpu_base_update`.)
    snapshot_strategy:
        How the tracker's CSR view advances across batches:
        ``REBUILD`` (default) rebuilds from the graph when dirty;
        ``DELTA`` layers each batch as a
        :class:`~repro.graph.delta.DeltaCSRGraph` overlay on the previous
        view (O(batch) instead of O(m)), consolidating at
        ``overlay_threshold``. Answers are bit-identical either way.

    Examples
    --------
    >>> from repro.graph import DynamicDiGraph, EdgeUpdate, EdgeOp
    >>> g = DynamicDiGraph([(1, 0), (2, 0)])
    >>> tracker = DynamicPPRTracker(g, source=0)
    >>> stats = tracker.apply_batch([EdgeUpdate(0, 1, EdgeOp.INSERT)])
    >>> tracker.estimate(0) > 0
    True
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        source: int,
        config: PPRConfig | None = None,
        *,
        sequential: bool = False,
        snapshot_strategy: SnapshotStrategy = SnapshotStrategy.REBUILD,
        overlay_threshold: float = DEFAULT_OVERLAY_THRESHOLD,
    ) -> None:
        self.config = config or PPRConfig()
        self.graph = graph
        self.sequential = sequential
        self.snapshot_strategy = snapshot_strategy
        self.overlay_threshold = overlay_threshold
        if not graph.has_vertex(source):
            graph.add_vertex(source)
        self.state = PPRState.initial(source, graph.capacity)
        self._csr: CSRView | None = None
        self._csr_dirty = True
        self.batches_processed = 0
        self.updates_processed = 0
        self.initial_stats = self._push(seeds=[source])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def source(self) -> int:
        return self.state.source

    def estimate(self, v: int) -> float:
        """Current ε-approximate PPR value of ``v``."""
        return self.state.estimate(v)

    def estimate_vector(self) -> np.ndarray:
        """A copy of the dense estimate vector."""
        return self.state.p[: self.graph.capacity].copy()

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` highest-PPR vertices as ``(vertex, estimate)`` pairs."""
        return self.state.top_k(k)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def _snapshot(self) -> CSRView:
        if self._csr is None or self._csr_dirty:
            self._csr = CSRGraph.from_digraph(self.graph)
            self._csr_dirty = False
        return self._csr

    def _advance_snapshot(self, updates: Sequence[EdgeUpdate]) -> None:
        """Move the CSR view past ``updates`` (already applied to the graph).

        ``DELTA`` strategy with a clean view: layer the batch as a row
        overlay (consolidating past ``overlay_threshold``); otherwise
        mark the view dirty so the next push rebuilds it.
        """
        if (
            self.snapshot_strategy is SnapshotStrategy.DELTA
            and self.config.backend is not Backend.PURE
            and self._csr is not None
            and not self._csr_dirty
        ):
            view = self._csr
            if not isinstance(view, DeltaCSRGraph):
                view = DeltaCSRGraph.wrap(view)
            view = view.apply_updates(self.graph, updates)
            if view.should_consolidate(self.overlay_threshold):
                view = view.consolidated()
            self._csr = view
        else:
            self._csr_dirty = True

    def set_snapshot(self, csr: CSRView) -> None:
        """Install an externally-built CSR snapshot of the *current* graph.

        The sliding-window benchmark harness builds snapshots directly
        from its window edge arrays (pure numpy, much faster than walking
        the dict graph); it must call this after every batch.
        """
        csr.ensure_covers(self.graph.capacity)
        self._csr = csr
        self._csr_dirty = False

    def _push(self, seeds: Iterable[int] | None) -> BatchStats:
        batch = BatchStats()
        start = clock.now()
        if self.sequential:
            seq = sequential_local_push(self.state, self.graph, self.config, seeds=seeds)
            batch.sequential_push = seq
        else:
            csr = self._snapshot() if self.config.backend is not Backend.PURE else None
            batch.push = parallel_local_push(
                self.state, self.graph, self.config, seeds=seeds, csr=csr
            )
        batch.wall_time = clock.now() - start
        return batch

    def apply_batch(
        self,
        updates: Sequence[EdgeUpdate],
        *,
        snapshot: CSRView | None = None,
    ) -> BatchStats:
        """Process one update batch: k restore-invariants, then one push.

        Returns the batch's operation trace (restore + push counters and
        wall time). The estimate is ε-approximate on return.

        ``snapshot`` may supply a CSR view of the graph *after* this
        batch, built externally (e.g. :meth:`repro.graph.stream.SlidingWindow.snapshot`
        or a serving layer sharing one snapshot across many trackers);
        when given, the tracker installs it instead of rebuilding its own.
        """
        start = clock.now()
        touched: list[int] = []
        change = 0.0
        for update in updates:
            self.graph.apply(update)
            delta = restore_invariant(self.state, self.graph, update, self.config.alpha)
            touched.append(update.u)
            change += abs(delta)
        if snapshot is not None:
            self._csr_dirty = True
            self.set_snapshot(snapshot)
        else:
            self._advance_snapshot(updates)
        batch = self._push(seeds=touched)
        batch.restore = RestoreStats(len(updates), change)
        batch.wall_time = clock.now() - start
        self.batches_processed += 1
        self.updates_processed += len(updates)
        return batch

    def apply_update(self, update: EdgeUpdate) -> BatchStats:
        """Single-update convenience wrapper over :meth:`apply_batch`."""
        return self.apply_batch([update])

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def current_error(self) -> float:
        """Exact max error vs. ground truth (slow; for tests/reports)."""
        truth = ground_truth_ppr(self.graph, self.source, self.config.alpha)
        return max_estimate_error(self.state.p, truth)

    def invariant_violation(self) -> float:
        """Max violation of Eq. 2 (should be float-rounding small always)."""
        return invariant_violation(self.state, self.graph, self.config.alpha)

    def is_converged(self) -> bool:
        """``max |r| <= epsilon`` — the push post-condition."""
        return self.state.residual_linf() <= self.config.epsilon

    def __repr__(self) -> str:
        return (
            f"DynamicPPRTracker(source={self.source}, n={self.graph.num_vertices},"
            f" m={self.graph.num_edges}, batches={self.batches_processed})"
        )


class MultiSourceTracker:
    """Maintain PPR vectors for several sources over one shared graph.

    Graph mutations are applied once per update; each source's invariant
    is restored and pushed independently. Useful for hub-vector indexes
    and for the all-sources residual-change measurements behind Lemma 3.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        sources: Sequence[int],
        config: PPRConfig | None = None,
    ) -> None:
        if not sources:
            raise ConfigError("at least one source is required")
        if len(set(sources)) != len(sources):
            raise ConfigError("sources must be distinct")
        self.config = config or PPRConfig()
        self.graph = graph
        for s in sources:
            if not graph.has_vertex(s):
                graph.add_vertex(s)
        self.states = {s: PPRState.initial(s, graph.capacity) for s in sources}
        for s, state in self.states.items():
            parallel_local_push(state, graph, self.config, seeds=[s])

    @property
    def sources(self) -> list[int]:
        return list(self.states)

    def estimate(self, source: int, v: int) -> float:
        return self.states[source].estimate(v)

    def top_k(self, source: int, k: int) -> list[tuple[int, float]]:
        """The ``k`` highest-PPR vertices of ``source`` as ``(id, value)``."""
        return self.states[source].top_k(k)

    def apply_batch(
        self,
        updates: Sequence[EdgeUpdate],
        *,
        snapshot: CSRView | None = None,
    ) -> dict[int, PushStats]:
        """Apply a batch to the graph and re-converge every source.

        All per-source pushes share one CSR snapshot; pass ``snapshot``
        (a view of the graph *after* this batch) to skip the rebuild when
        an outer layer already maintains one.
        """
        touched: list[int] = []
        for update in updates:
            self.graph.apply(update)
            for state in self.states.values():
                restore_invariant(state, self.graph, update, self.config.alpha)
            touched.append(update.u)
        if snapshot is None and self.config.backend is not Backend.PURE:
            snapshot = CSRGraph.from_digraph(self.graph)
        return {
            s: parallel_local_push(
                state, self.graph, self.config, seeds=touched, csr=snapshot
            )
            for s, state in self.states.items()
        }

    def __repr__(self) -> str:
        return f"MultiSourceTracker(sources={len(self.states)}, n={self.graph.num_vertices})"
