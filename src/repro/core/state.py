"""PPR estimate/residual state (the paper's ``P_s`` and ``R_s`` vectors).

One :class:`PPRState` tracks the approximate PPR vector for a single
personalization vertex ``s``. ``p[v]`` is the current estimate of the true
value ``pi_v(s)`` (the fixpoint of invariant Eq. 2) and ``r[v]`` bounds the
estimation bias: whenever the invariant holds and ``max |r| <= eps``,
``|p[v] - pi_v(s)| <= eps`` for every vertex.

The arrays are dense, indexed by vertex id, and grow amortized as the
dynamic graph introduces new ids.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class PPRState:
    """Dense estimate (``p``) and residual (``r``) vectors for one source."""

    __slots__ = ("source", "p", "r")

    def __init__(self, source: int, capacity: int = 0) -> None:
        if source < 0:
            raise ConfigError(f"source must be a vertex id >= 0, got {source}")
        cap = max(capacity, source + 1)
        self.source = source
        self.p = np.zeros(cap, dtype=np.float64)
        self.r = np.zeros(cap, dtype=np.float64)

    @classmethod
    def initial(cls, source: int, capacity: int = 0) -> "PPRState":
        """The from-scratch starting state: ``p = 0``, ``r = e_s``.

        This satisfies invariant Eq. 2 on any graph (for ``v != s`` both
        sides are 0 when ``p = 0``; for ``s`` both sides equal ``alpha``).
        """
        state = cls(source, capacity)
        state.r[source] = 1.0
        return state

    # ------------------------------------------------------------------ #
    # capacity management
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        return len(self.p)

    def ensure_capacity(self, capacity: int) -> None:
        """Grow (never shrink) the arrays to cover ``capacity`` ids."""
        current = len(self.p)
        if capacity <= current:
            return
        new_cap = max(capacity, 2 * current, 16)
        p = np.zeros(new_cap, dtype=np.float64)
        r = np.zeros(new_cap, dtype=np.float64)
        p[:current] = self.p
        r[:current] = self.r
        self.p = p
        self.r = r

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def estimate(self, v: int) -> float:
        """Current PPR estimate of vertex ``v`` (0.0 for ids never touched)."""
        return float(self.p[v]) if 0 <= v < len(self.p) else 0.0

    def residual(self, v: int) -> float:
        """Current residual of vertex ``v`` (0.0 for ids never touched)."""
        return float(self.r[v]) if 0 <= v < len(self.r) else 0.0

    def residual_linf(self) -> float:
        """``max_v |r[v]|`` — the convergence measure of the local push."""
        return float(np.abs(self.r).max()) if len(self.r) else 0.0

    def residual_l1(self) -> float:
        """``sum_v |r[v]|`` — the quantity Lemma 4 reasons about."""
        return float(np.abs(self.r).sum())

    def estimate_sum(self) -> float:
        return float(self.p.sum())

    def active_vertices(self, epsilon: float) -> np.ndarray:
        """All vertex ids with ``|r| > epsilon`` (topology-driven scan)."""
        return np.flatnonzero(np.abs(self.r) > epsilon)

    def top_k(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` vertices with largest estimates, as ``(id, value)``."""
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        k = min(k, len(self.p))
        idx = np.argpartition(self.p, -k)[-k:]
        idx = idx[np.argsort(self.p[idx])[::-1]]
        return [(int(v), float(self.p[v])) for v in idx]

    # ------------------------------------------------------------------ #
    # persistence codec
    # ------------------------------------------------------------------ #

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Serialize to plain arrays (float64 bit patterns preserved).

        The arrays are returned at their *exact* current length — capacity
        padding included — so a restored state continues the same growth
        trajectory (array length feeds tie-breaking in ``argpartition``
        and the doubling schedule of :meth:`ensure_capacity`).
        """
        return {
            "source": np.int64(self.source),
            "p": self.p.copy(),
            "r": self.r.copy(),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "PPRState":
        """Rebuild a state serialized by :meth:`to_arrays` bit-exactly."""
        p = np.asarray(arrays["p"], dtype=np.float64)
        r = np.asarray(arrays["r"], dtype=np.float64)
        if p.shape != r.shape:
            raise ConfigError(f"p/r shape mismatch: {p.shape} vs {r.shape}")
        state = cls(int(arrays["source"]), len(p))
        state.p[:] = p
        state.r[:] = r
        return state

    # ------------------------------------------------------------------ #
    # copies / comparison
    # ------------------------------------------------------------------ #

    def copy(self) -> "PPRState":
        out = PPRState(self.source, len(self.p))
        out.p[:] = self.p
        out.r[:] = self.r
        return out

    def allclose(self, other: "PPRState", *, atol: float = 1e-12) -> bool:
        """Numerically-equal states (padding shorter arrays with zeros)."""
        if self.source != other.source:
            return False
        cap = max(len(self.p), len(other.p))
        a_p = np.zeros(cap)
        a_p[: len(self.p)] = self.p
        b_p = np.zeros(cap)
        b_p[: len(other.p)] = other.p
        a_r = np.zeros(cap)
        a_r[: len(self.r)] = self.r
        b_r = np.zeros(cap)
        b_r[: len(other.r)] = other.r
        return bool(np.allclose(a_p, b_p, atol=atol) and np.allclose(a_r, b_r, atol=atol))

    def __repr__(self) -> str:
        return (
            f"PPRState(source={self.source}, capacity={len(self.p)},"
            f" |r|_inf={self.residual_linf():.3e})"
        )
