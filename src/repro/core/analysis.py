"""Theoretical complexity bounds (Theorems 1-3, Lemmas 2-3) and their
empirical verification helpers.

The paper's analysis tracks the *residual change* ``Delta_s^i(u)`` each
restore-invariant inflicts and bounds total work by accumulated residual.
This module exposes:

* the closed-form bounds of Theorem 1 (sequential), Lemma 3 (per-batch
  residual change summed over all sources) and Theorem 3 / Equations 4-5
  (parallel, directed and undirected arrival models);
* :func:`measure_residual_change` which maintains *every* source on a
  small graph and measures the actual ``sum_s |Delta_s(u)|`` so property
  tests can assert Lemma 3's inequality.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..config import PPRConfig
from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from ..utils.validation import check_fraction, check_positive
from .invariant import restore_invariant
from .push_parallel import parallel_local_push
from .state import PPRState


def sequential_bound(K: int, n: int, d: float, epsilon: float, *, scale: float = 1.0) -> float:
    """Theorem 1: sequential local update costs ``O(K + K/(n eps) + d/eps)``.

    ``scale`` multiplies the asymptotic expression into a concrete
    operation estimate when comparing against measured counts.
    """
    check_positive("K", K)
    check_positive("n", n)
    check_fraction("epsilon", epsilon)
    return scale * (K + K / (n * epsilon) + d / epsilon)


def residual_change_bound(k: int, n: int, epsilon: float, alpha: float, dout_u: int) -> float:
    """Lemma 3: ``sum_s Delta_s^i(u) <= k (2 n eps + 2) / (alpha dout(u))``.

    ``k`` is the number of batch updates starting at ``u`` and ``dout_u``
    the out-degree of ``u`` *after* the batch.
    """
    check_positive("k", k)
    check_positive("n", n)
    check_fraction("epsilon", epsilon)
    check_fraction("alpha", alpha)
    check_positive("dout_u", dout_u)
    return k * (2.0 * n * epsilon + 2.0) / (alpha * dout_u)


def parallel_bound_directed(
    K: int, n: int, d: float, epsilon: float, alpha: float
) -> float:
    """Equation 4: upper bound on ``Psi_d`` for random directed edge arrival.

    ``Psi_d <= d/(alpha eps) + K (alpha+4)/(n alpha^2)
    + K (2/alpha^2 + 2/(alpha^2 n eps))``.
    """
    check_positive("K", K)
    check_positive("n", n)
    check_fraction("epsilon", epsilon)
    check_fraction("alpha", alpha)
    a2 = alpha * alpha
    return (
        d / (alpha * epsilon)
        + K * (alpha + 4.0) / (n * a2)
        + K * (2.0 / a2 + 2.0 / (a2 * n * epsilon))
    )


def parallel_bound_undirected(
    K: int, n: int, d: float, epsilon: float, alpha: float
) -> float:
    """Equation 5: upper bound on ``Psi_u`` for arbitrary undirected updates.

    ``Psi_u <= d/(alpha eps) + 2K/alpha + K (4/alpha^2 + 4/(alpha^2 n eps))``.
    """
    check_positive("K", K)
    check_positive("n", n)
    check_fraction("epsilon", epsilon)
    check_fraction("alpha", alpha)
    a2 = alpha * alpha
    return (
        d / (alpha * epsilon)
        + 2.0 * K / alpha
        + K * (4.0 / a2 + 4.0 / (a2 * n * epsilon))
    )


@dataclass(frozen=True)
class ResidualChangeMeasurement:
    """Measured vs. bounded residual change for one batch at one vertex."""

    vertex: int
    updates_from_vertex: int
    measured: float
    bound: float

    @property
    def within_bound(self) -> bool:
        # Allow float-rounding slack on the comparison.
        return self.measured <= self.bound * (1.0 + 1e-9) + 1e-12


def measure_residual_change(
    graph: DynamicDiGraph,
    batch: Sequence[EdgeUpdate],
    config: PPRConfig,
) -> list[ResidualChangeMeasurement]:
    """Empirically check Lemma 3 on (a copy of) ``graph`` for one batch.

    Maintains a *converged* PPR state for every vertex of the graph
    (Lemma 3 assumes ``|r| <= eps`` and ``P <= pi + eps`` beforehand),
    applies the batch with restore-invariant only, and reports the
    measured ``sum_s |Delta_s(u)|`` against the bound for every distinct
    batch start-vertex ``u``. Intended for small graphs (cost O(n^2)).
    """
    work = graph.copy()
    sources = sorted(work.vertices())
    states: dict[int, PPRState] = {}
    for s in sources:
        state = PPRState.initial(s, work.capacity)
        parallel_local_push(state, work, config, seeds=[s])
        states[s] = state

    change: dict[int, float] = {}
    count: dict[int, int] = {}
    per_source_delta: dict[int, dict[int, float]] = {s: {} for s in sources}
    for update in batch:
        work.apply(update)
        for s, state in states.items():
            delta = restore_invariant(state, work, update, config.alpha)
            acc = per_source_delta[s]
            acc[update.u] = acc.get(update.u, 0.0) + delta
        count[update.u] = count.get(update.u, 0) + 1

    # Lemma 3 bounds |r_k(u) - r_0(u)| per source, i.e. the absolute value
    # of the *net* change over the batch, summed over sources.
    for s in sources:
        for u, delta in per_source_delta[s].items():
            change[u] = change.get(u, 0.0) + abs(delta)

    n = work.num_vertices
    results = []
    for u, k_u in sorted(count.items()):
        bound = residual_change_bound(
            k_u, n, config.epsilon, config.alpha, max(1, work.out_degree(u))
        )
        results.append(
            ResidualChangeMeasurement(
                vertex=u,
                updates_from_vertex=k_u,
                measured=change.get(u, 0.0),
                bound=bound,
            )
        )
    return results


@dataclass(frozen=True)
class ParallelLossReport:
    """Operation comparison between the parallel and sequential push.

    The paper's Lemma 4 / Figure 3: starting from identical state, the
    parallel push performs *at least* as many push operations as the
    sequential push; eager propagation narrows the gap.
    """

    sequential_pushes: int
    parallel_pushes: int

    @property
    def loss(self) -> int:
        """Extra push operations the parallel schedule paid."""
        return self.parallel_pushes - self.sequential_pushes

    @property
    def ratio(self) -> float:
        if self.sequential_pushes == 0:
            return 1.0
        return self.parallel_pushes / self.sequential_pushes


def parallel_loss(
    graph: DynamicDiGraph,
    state: PPRState,
    config: PPRConfig,
    *,
    seeds: Sequence[int] | None = None,
) -> ParallelLossReport:
    """Run both pushes from copies of ``state``; compare push counts."""
    from .push_sequential import sequential_local_push

    seq_state = state.copy()
    par_state = state.copy()
    seq_stats = sequential_local_push(seq_state, graph, config, seeds=seeds)
    par_stats = parallel_local_push(par_state, graph, config, seeds=seeds)
    return ParallelLossReport(
        sequential_pushes=seq_stats.pushes,
        parallel_pushes=par_stats.pushes,
    )
