"""Operation accounting shared by every push engine.

The paper's performance claims are fundamentally about *operation counts
and their shape across iterations* (work per iteration, synchronization
events, duplicate-merge attempts). Every engine in this library emits the
same :class:`PushStats` trace so that

* the cost models in :mod:`repro.parallel` can turn traces into simulated
  hardware latency, and
* tests can assert the paper's structural results (e.g. parallel loss:
  the parallel push performs at least as many operations as the
  sequential push on the same workload — Lemma 4's consequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Phase


@dataclass
class IterationRecord:
    """Operation counts for one ``ParallelPush`` iteration.

    Attributes
    ----------
    phase:
        Positive or negative residual phase.
    frontier_size:
        Vertices pushed this iteration (``|FQ|``).
    edge_traversals:
        In-edges traversed during neighbor propagation (with multiplicity).
    atomic_adds:
        Atomic residual additions (equals edge traversals for the push).
    enqueue_attempts:
        Candidate activations observed (including duplicates); under
        global duplicate detection each attempt costs a synchronized
        membership check.
    dedup_checks:
        Synchronized duplicate checks performed (0 under local duplicate
        detection, which is the point of Section 4.2).
    enqueued:
        Vertices actually placed in the next frontier.
    second_pass_enqueued:
        Vertices enqueued by the extra self-update frontier pass that
        eager propagation requires (Algorithm 4, lines 22-23).
    residual_pushed:
        Sum of absolute residual values pushed (mass drained).
    """

    phase: Phase
    frontier_size: int = 0
    edge_traversals: int = 0
    atomic_adds: int = 0
    enqueue_attempts: int = 0
    dedup_checks: int = 0
    enqueued: int = 0
    second_pass_enqueued: int = 0
    residual_pushed: float = 0.0


@dataclass
class PushStats:
    """A full push run: one record per iteration plus totals."""

    iterations: list[IterationRecord] = field(default_factory=list)

    def record(self, rec: IterationRecord) -> None:
        self.iterations.append(rec)

    # -- totals ---------------------------------------------------------- #

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def pushes(self) -> int:
        """Total push operations (sum of frontier sizes)."""
        return sum(rec.frontier_size for rec in self.iterations)

    @property
    def edge_traversals(self) -> int:
        return sum(rec.edge_traversals for rec in self.iterations)

    @property
    def atomic_adds(self) -> int:
        return sum(rec.atomic_adds for rec in self.iterations)

    @property
    def enqueue_attempts(self) -> int:
        return sum(rec.enqueue_attempts for rec in self.iterations)

    @property
    def dedup_checks(self) -> int:
        return sum(rec.dedup_checks for rec in self.iterations)

    @property
    def total_operations(self) -> int:
        """Pushes + edge traversals — the unit the theory bounds."""
        return self.pushes + self.edge_traversals

    @property
    def max_frontier(self) -> int:
        return max((rec.frontier_size for rec in self.iterations), default=0)

    @property
    def mean_frontier(self) -> float:
        if not self.iterations:
            return 0.0
        return self.pushes / len(self.iterations)

    def merge(self, other: "PushStats") -> None:
        """Append another run's iterations (accumulating across slides)."""
        self.iterations.extend(other.iterations)

    def __repr__(self) -> str:
        return (
            f"PushStats(iters={self.num_iterations}, pushes={self.pushes},"
            f" edges={self.edge_traversals}, dedup={self.dedup_checks})"
        )


@dataclass
class SequentialPushStats:
    """Counters for the sequential push (Algorithm 2)."""

    pushes: int = 0
    edge_traversals: int = 0
    push_order: list[int] | None = None

    @property
    def total_operations(self) -> int:
        return self.pushes + self.edge_traversals

    def merge(self, other: "SequentialPushStats") -> None:
        self.pushes += other.pushes
        self.edge_traversals += other.edge_traversals
        if self.push_order is not None and other.push_order is not None:
            self.push_order.extend(other.push_order)


@dataclass
class RestoreStats:
    """Counters for the restore-invariant step of one batch."""

    num_updates: int = 0
    total_residual_change: float = 0.0

    def merge(self, other: "RestoreStats") -> None:
        self.num_updates += other.num_updates
        self.total_residual_change += other.total_residual_change


@dataclass
class BatchStats:
    """Everything measured while processing one update batch."""

    restore: RestoreStats = field(default_factory=RestoreStats)
    push: PushStats = field(default_factory=PushStats)
    sequential_push: SequentialPushStats | None = None
    wall_time: float = 0.0

    def merge(self, other: "BatchStats") -> None:
        self.restore.merge(other.restore)
        self.push.merge(other.push)
        if self.sequential_push is not None and other.sequential_push is not None:
            self.sequential_push.merge(other.sequential_push)
        self.wall_time += other.wall_time
