"""Vectorized (numpy) backend for the parallel local push.

Semantically equivalent to the pure engine in :mod:`push_parallel` —
same frontier-per-iteration structure, same worker-width chunked
scheduling for eager reads, same sorted-frontier contract — but the inner
loops run as numpy array operations:

* ``np.add.at`` / ``np.bincount`` play the role of atomic residual
  additions (commutative, so the final sums match hardware atomics);
* local duplicate detection compares each touched vertex's residual
  before and after a chunk's propagation — monotonicity within a phase
  guarantees the crossing is observed by exactly one chunk, mirroring the
  exactly-one-thread guarantee of the paper's atomicAdd trick.

One accounting approximation (documented): ``enqueue_attempts`` counts
every addition landing on a vertex whose *post-chunk* residual passes the
threshold, whereas the pure engine tests each addition's own post-value.
Within a chunk these can differ by the adds that precede the crossing;
totals agree to within one chunk's contribution and both upper-bound the
true synchronized-check count used by the cost models.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..config import Phase, PPRConfig
from ..errors import ConvergenceError
from ..graph.delta import CSRView
from .state import PPRState
from .stats import IterationRecord, PushStats

#: Floor below which the scatter-add never considers the bincount path.
#: The measured crossover (``benchmarks/bench_core_micro.py``,
#: ``test_scatter_add_crossover``) sits where a chunk's traversals exceed
#: the state-vector capacity — buffered ``np.add.at`` wins everywhere
#: below it on numpy ≥ 2 and allocates nothing, whereas the historical
#: policy paid a capacity-sized ``np.bincount`` output for every call
#: above this constant.
_BINCOUNT_THRESHOLD = 2048


class _Scratch:
    """Process-wide reusable buffers for the push hot path.

    The vectorized push used to allocate two capacity-sized arrays per
    propagation chunk (a ``np.bincount`` accumulator and the
    ``passing_mask`` boolean); at delta-sized batches those allocations
    dominated the chunk cost. The mask lives here instead, grown
    monotonically and *cleared by the borrower* (reset exactly the
    positions it set) so reuse costs O(touched), not O(capacity).
    """

    __slots__ = ("mask",)

    def __init__(self) -> None:
        self.mask = np.zeros(0, dtype=bool)

    def bool_mask(self, size: int) -> np.ndarray:
        """An all-``False`` mask of at least ``size``; caller re-clears it."""
        if len(self.mask) < size:
            self.mask = np.zeros(max(size, 2 * len(self.mask)), dtype=bool)
        return self.mask


_SCRATCH = _Scratch()


def _scatter_add(r: np.ndarray, targets: np.ndarray, values: np.ndarray, cap: int) -> None:
    """Atomic-add equivalent: accumulate ``values`` into ``r[targets]``.

    Policy set by the crossover micro-bench
    (``benchmarks/bench_core_micro.py::test_scatter_add_crossover``):
    buffered ``np.add.at`` allocates nothing and wins until a chunk's
    traversal count reaches the state-vector capacity, so the full-width
    ``np.bincount`` accumulator — a capacity-sized allocation per call —
    runs only in that denser-than-the-vector regime where its output is
    no larger than its input. (``np.bincount`` cannot write into caller
    memory, so the reusable scratch of this hot path lives at the
    ``passing_mask`` in ``_propagate_chunk`` instead.)

    The two branches agree only up to float rounding (``add.at`` folds
    each increment into ``r`` as it goes; ``bincount`` totals them from
    0.0 first) — but the branch choice is a deterministic function of
    the input sizes, so any two runs being compared bit-for-bit (delta
    vs rebuild snapshots, recovery vs uninterrupted) take the same
    branch on the same data and stay bit-identical. Do not make the
    threshold depend on anything that can differ between such runs.
    """
    if len(targets) > max(_BINCOUNT_THRESHOLD, cap):
        r += np.bincount(targets, weights=values, minlength=cap)
    else:
        np.add.at(r, targets, values)


def _exceeds(values: np.ndarray, phase: Phase, epsilon: float) -> np.ndarray:
    """Vectorized ``pushCond``."""
    if phase is Phase.POS:
        return values > epsilon
    return values < -epsilon


def _prepare_seeds(
    state: PPRState,
    phase: Phase,
    epsilon: float,
    seeds: Iterable[int] | None,
) -> np.ndarray:
    if seeds is None:
        candidates = state.active_vertices(epsilon)
    else:
        candidates = np.unique(np.fromiter((int(v) for v in seeds), dtype=np.int64))
    if candidates.size == 0:
        return candidates.astype(np.int64)
    mask = _exceeds(state.r[candidates], phase, epsilon)
    return candidates[mask].astype(np.int64)


def _propagate_chunk(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    chunk: np.ndarray,
    weights: np.ndarray,
    rec: IterationRecord,
    current_mask: np.ndarray | None,
    enqueued_mask: np.ndarray,
) -> np.ndarray:
    """Neighbor propagation for one scheduling chunk; returns new frontier ids.

    ``current_mask`` is set for eager variants (exclude the unconsumed
    current frontier from global enqueueing); ``enqueued_mask`` dedupes
    across chunks for the global-queue variants.
    """
    epsilon = config.epsilon
    local_detect = config.variant.local_duplicate_detection
    r = state.r
    src_idx, targets = csr.gather_in_edges(chunk)
    if targets.size == 0:
        return targets
    increments = (1.0 - config.alpha) * weights[src_idx] / csr.dout[targets]
    touched = np.unique(targets)
    before = r[touched].copy()
    _scatter_add(r, targets, increments, len(r))
    after = r[touched]

    rec.edge_traversals += int(targets.size)
    rec.atomic_adds += int(targets.size)

    passes_after = _exceeds(after, phase, epsilon)
    passing = touched[passes_after]
    # Attempts: adds landing on vertices whose post-chunk value passes.
    if passing.size:
        passing_mask = _SCRATCH.bool_mask(len(r))
        passing_mask[passing] = True
        attempts = int(passing_mask[targets].sum())
        passing_mask[passing] = False  # leave the scratch clean
    else:
        attempts = 0
    rec.enqueue_attempts += attempts

    if local_detect:
        crossed = touched[~_exceeds(before, phase, epsilon) & passes_after]
        return crossed
    rec.dedup_checks += attempts
    candidates = passing
    if current_mask is not None and candidates.size:
        candidates = candidates[~current_mask[candidates]]
    if candidates.size:
        candidates = candidates[~enqueued_mask[candidates]]
        enqueued_mask[candidates] = True
    return candidates


def _snapshot_iteration(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    frontier: np.ndarray,
    rec: IterationRecord,
) -> np.ndarray:
    """Algorithm 3 session order, whole-frontier snapshot semantics."""
    alpha = config.alpha
    r = state.r
    weights = r[frontier].copy()
    state.p[frontier] += alpha * weights
    r[frontier] = 0.0
    rec.residual_pushed += float(np.abs(weights).sum())
    enqueued_mask = np.zeros(len(r), dtype=bool)
    new = _propagate_chunk(
        state, csr, phase, config, frontier, weights, rec, None, enqueued_mask
    )
    rec.enqueued = int(new.size)
    return np.sort(new)


def _eager_iteration(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    frontier: np.ndarray,
    rec: IterationRecord,
) -> np.ndarray:
    """Algorithm 4 session order with worker-width chunked eager reads."""
    alpha = config.alpha
    epsilon = config.epsilon
    local_detect = config.variant.local_duplicate_detection
    r = state.r
    consistent = np.empty(len(frontier), dtype=np.float64)
    pieces: list[np.ndarray] = []
    enqueued_mask = np.zeros(len(r), dtype=bool)
    current_mask: np.ndarray | None = None
    if not local_detect:
        current_mask = np.zeros(len(r), dtype=bool)
        current_mask[frontier] = True

    width = config.workers
    for start in range(0, len(frontier), width):
        chunk = frontier[start : start + width]
        weights = r[chunk].copy()  # simultaneous (chunk-wide) eager reads
        consistent[start : start + len(chunk)] = weights
        piece = _propagate_chunk(
            state, csr, phase, config, chunk, weights, rec, current_mask, enqueued_mask
        )
        if piece.size:
            pieces.append(piece)

    # Session 2 — self-update with the consistent values, second frontier pass.
    state.p[frontier] += alpha * consistent
    r[frontier] -= consistent
    rec.residual_pushed += float(np.abs(consistent).sum())
    reactivated = frontier[_exceeds(r[frontier], phase, epsilon)]
    rec.second_pass_enqueued = int(reactivated.size)
    if reactivated.size:
        pieces.append(reactivated)
    if not pieces:
        rec.enqueued = 0
        return np.empty(0, dtype=np.int64)
    new = np.concatenate(pieces)
    rec.enqueued = int(new.size)
    return np.sort(new)


def vectorized_phase(
    state: PPRState,
    csr: CSRView,
    phase: Phase,
    config: PPRConfig,
    seeds: Iterable[int] | None,
    stats: PushStats,
) -> None:
    """Run one sign phase of the vectorized parallel push to exhaustion."""
    frontier = _prepare_seeds(state, phase, config.epsilon, seeds)
    iteration = _eager_iteration if config.variant.eager else _snapshot_iteration
    # Distributed views (repro.shard) expose a prefetch hook so one batched
    # round-trip fetches every remote in-row the iteration will gather;
    # plain CSR snapshots don't have it and skip the probe entirely. The
    # weights are informational (the eager variant re-reads residuals per
    # chunk); the frontier is the contract.
    prefetch = getattr(csr, "prefetch_rows", None)
    rounds = 0
    while frontier.size:
        if prefetch is not None:
            prefetch(frontier, state.r[frontier])
        rec = IterationRecord(phase=phase, frontier_size=int(frontier.size))
        frontier = iteration(state, csr, phase, config, frontier, rec)
        stats.record(rec)
        rounds += 1
        if rounds > config.max_iterations:
            raise ConvergenceError(rounds, state.residual_linf())
