"""Invariant restoration (Algorithm 1) and the exact invariant checker.

The local update scheme keeps invariant Eq. 2 for every vertex ``v``::

    P_s(v) + alpha * R_s(v)
        = sum_{x in Nout(v)} (1 - alpha) * P_s(x) / dout(v) + alpha * 1{v = s}

An edge update ``(u, v, op)`` only changes the right-hand side at ``u``
(its out-neighborhood/out-degree changed), so restoring the invariant
adjusts ``R_s(u)`` alone:

    delta = op * [(1-a) P(v) - P(u) - a R(u) + a 1{u=s}] / (a * dout_after(u))

where ``dout_after`` is the out-degree *after* the update is applied (this
matches the recurrence delta_j = d_{j-1}/d_j in the paper's Lemma 3).
Deleting ``u``'s last out-edge is the one case the formula cannot express
(``dout_after = 0``); Eq. 2 then directly pins ``R_s(u)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..graph.digraph import DynamicDiGraph
from ..graph.update import EdgeUpdate
from .state import PPRState


def restore_invariant(
    state: PPRState,
    graph: DynamicDiGraph,
    update: EdgeUpdate,
    alpha: float,
) -> float:
    """Repair Eq. 2 for one update; ``graph`` must already reflect it.

    Returns the signed residual change applied to ``R_s(u)`` (the theory's
    ``Delta_s(u)`` contribution, tracked by Lemma 3).
    """
    u, v, op = update.u, update.v, update.op
    state.ensure_capacity(max(graph.capacity, u + 1, v + 1))
    indicator = alpha if u == state.source else 0.0
    dout = graph.out_degree(u)

    if dout == 0:
        # op must be DELETE (an insertion leaves dout >= 1). Eq. 2 for a
        # dangling vertex reads P(u) + a R(u) = a 1{u=s}.
        new_r = (indicator - state.p[u]) / alpha
        delta = float(new_r - state.r[u])
        state.r[u] = new_r
        return delta

    numerator = (
        (1.0 - alpha) * state.p[v] - state.p[u] - alpha * state.r[u] + indicator
    )
    delta = float(op) * numerator / (alpha * dout)
    state.r[u] += delta
    return delta


def apply_and_restore(
    graph: DynamicDiGraph,
    states: Sequence[PPRState],
    update: EdgeUpdate,
    alpha: float,
) -> list[float]:
    """Apply ``update`` to ``graph`` then restore every state's invariant.

    The graph is mutated exactly once even when many personalization
    sources share it (the multi-source tracker and the theory checks in
    :mod:`repro.core.analysis` rely on this).
    """
    graph.apply(update)
    return [restore_invariant(state, graph, update, alpha) for state in states]


def restore_batch(
    graph: DynamicDiGraph,
    state: PPRState,
    updates: Iterable[EdgeUpdate],
    alpha: float,
) -> tuple[list[int], float]:
    """Apply a whole batch (Section 3.1: ``RestoreInvariant`` k times).

    Returns ``(touched_vertices, total_absolute_residual_change)``. The
    touched list seeds the push frontier: after a converged previous step
    only vertices whose residual was modified can exceed ``epsilon``.
    """
    touched: list[int] = []
    total_change = 0.0
    for update in updates:
        graph.apply(update)
        delta = restore_invariant(state, graph, update, alpha)
        touched.append(update.u)
        total_change += abs(delta)
    return touched, total_change


def invariant_violation(
    state: PPRState,
    graph: DynamicDiGraph,
    alpha: float,
) -> float:
    """Max absolute violation of Eq. 2 over all vertices (O(n + m)).

    Exact (up to float rounding); meant for tests and debugging, not hot
    paths.
    """
    worst = 0.0
    for v in graph.vertices():
        lhs = state.estimate(v) + alpha * state.residual(v)
        dout = graph.out_degree(v)
        rhs = alpha if v == state.source else 0.0
        if dout > 0:
            acc = 0.0
            for x, mult in graph.out_neighbors(v):
                acc += mult * state.estimate(x)
            rhs += (1.0 - alpha) * acc / dout
        worst = max(worst, abs(lhs - rhs))
    return worst


def check_invariant(
    state: PPRState,
    graph: DynamicDiGraph,
    alpha: float,
    *,
    tol: float = 1e-9,
) -> bool:
    """True when Eq. 2 holds everywhere within ``tol``."""
    return invariant_violation(state, graph, alpha) <= tol
