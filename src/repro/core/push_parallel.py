"""Parallel local push — Algorithms 3 and 4, all four Table-3 variants.

This module is the *reference engine*: it executes the parallel algorithms
under an explicit deterministic schedule so that tests can reason about
exact outcomes. The semantics of "parallel" are:

* one *iteration* pushes every frontier vertex "at once" (the paper's
  ``ParallelPush`` / ``OptParallelPush``);
* atomic residual additions become plain additions — they commute, so any
  interleaving yields the same sums;
* **eager propagation** is the one schedule-*dependent* behaviour (a
  frontier vertex reads its residual "up to date", possibly including
  same-iteration propagation). We model hardware with ``config.workers``
  concurrent threads: the frontier is processed in chunks of that width;
  all reads within a chunk happen before the chunk propagates, and later
  chunks observe earlier chunks' additions. ``workers=1`` degenerates to
  the (most eager) sequential-like schedule, ``workers >= |frontier|`` to
  fully-stale snapshot reads.

Frontier ordering contract: each iteration's frontier is sorted by vertex
id. This pins the chunk composition, making the pure and numpy backends
bit-compatible up to float summation order.

Variant semantics (Table 3):

* ``VANILLA`` — Algorithm 3: self-update first (zeroing residuals), then
  neighbor propagation with globally-synchronized ``UniqueEnqueue``.
* ``DUPDETECT`` — Algorithm 3 session order, but frontier generation uses
  the atomicAdd before/after values (local duplicate detection): no
  synchronized membership checks.
* ``EAGER`` — Algorithm 4 session order (propagate first with up-to-date
  reads, self-update subtracts the consistent value) but frontier
  generation still uses the synchronized ``UniqueEnqueue``; current-
  frontier vertices are excluded during propagation and re-checked after
  self-update.
* ``OPT`` — Algorithm 4 exactly: eager propagation + local duplicate
  detection + the second frontier-generation pass (lines 22-23).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .. import obs
from ..config import Backend, Phase, PPRConfig
from ..errors import BackendError, ConvergenceError
from ..graph.csr import CSRGraph
from ..graph.delta import CSRView
from ..graph.digraph import DynamicDiGraph
from .state import PPRState
from .stats import IterationRecord, PushStats


def _prepare_seeds(
    state: PPRState,
    phase: Phase,
    epsilon: float,
    seeds: Iterable[int] | None,
) -> list[int]:
    """Sorted, unique seed vertices currently exceeding the threshold."""
    if seeds is None:
        candidates = [int(v) for v in state.active_vertices(epsilon)]
    else:
        candidates = sorted(set(int(v) for v in seeds))
    return [v for v in candidates if phase.exceeds(state.r[v], epsilon)]


def _chunks(frontier: Sequence[int], width: int) -> Iterable[Sequence[int]]:
    for start in range(0, len(frontier), width):
        yield frontier[start : start + width]


def _snapshot_iteration(
    state: PPRState,
    graph: DynamicDiGraph,
    phase: Phase,
    config: PPRConfig,
    frontier: Sequence[int],
    rec: IterationRecord,
) -> list[int]:
    """One ``ParallelPush`` iteration (Algorithm 3 session order)."""
    alpha = config.alpha
    epsilon = config.epsilon
    local_detect = config.variant.local_duplicate_detection
    r = state.r
    p = state.p

    # Session 1 — self-update: snapshot residuals, zero them (lines 13-16).
    weights = [float(r[u]) for u in frontier]
    for u, w in zip(frontier, weights):
        p[u] += alpha * w
        r[u] = 0.0
        rec.residual_pushed += abs(w)

    # Session 2 — neighbor propagation (lines 19-23).
    next_list: list[int] = []
    enqueued: set[int] = set()
    for u, w in zip(frontier, weights):
        factor = (1.0 - alpha) * w
        for v, mult in graph.in_neighbors(u):
            before = r[v]
            after = before + factor * mult / graph.out_degree(v)
            r[v] = after
            rec.edge_traversals += mult
            rec.atomic_adds += mult
            passes = phase.exceeds(after, epsilon)
            if local_detect:
                if passes:
                    rec.enqueue_attempts += 1
                    if not phase.exceeds(before, epsilon):
                        next_list.append(v)
            elif passes:
                rec.enqueue_attempts += 1
                rec.dedup_checks += 1
                if v not in enqueued:
                    enqueued.add(v)
                    next_list.append(v)
    rec.enqueued = len(next_list)
    return next_list


def _eager_iteration(
    state: PPRState,
    graph: DynamicDiGraph,
    phase: Phase,
    config: PPRConfig,
    frontier: Sequence[int],
    rec: IterationRecord,
) -> list[int]:
    """One ``OptParallelPush`` iteration (Algorithm 4 session order)."""
    alpha = config.alpha
    epsilon = config.epsilon
    local_detect = config.variant.local_duplicate_detection
    r = state.r
    p = state.p

    current = set(frontier)
    consistent: list[float] = []  # the per-vertex ``ru`` recorded in E
    next_list: list[int] = []
    enqueued: set[int] = set()

    # Session 1 — neighbor propagation with eager (up-to-date) reads.
    for chunk in _chunks(frontier, config.workers):
        chunk_reads = [float(r[u]) for u in chunk]  # simultaneous reads
        consistent.extend(chunk_reads)
        for u, ru in zip(chunk, chunk_reads):
            factor = (1.0 - alpha) * ru
            for v, mult in graph.in_neighbors(u):
                before = r[v]
                after = before + factor * mult / graph.out_degree(v)
                r[v] = after
                rec.edge_traversals += mult
                rec.atomic_adds += mult
                passes = phase.exceeds(after, epsilon)
                if local_detect:
                    if passes:
                        rec.enqueue_attempts += 1
                        if not phase.exceeds(before, epsilon):
                            next_list.append(v)
                elif passes:
                    rec.enqueue_attempts += 1
                    rec.dedup_checks += 1
                    # UniqueEnqueue must also skip current-frontier vertices:
                    # their residual is not yet consumed (subtracted below).
                    if v not in current and v not in enqueued:
                        enqueued.add(v)
                        next_list.append(v)

    # Session 2 — self-update with the consistent ``ru`` (lines 19-23).
    for u, ru in zip(frontier, consistent):
        p[u] += alpha * ru
        r[u] -= ru
        rec.residual_pushed += abs(ru)
        if phase.exceeds(r[u], epsilon):
            rec.second_pass_enqueued += 1
            next_list.append(u)
    rec.enqueued = len(next_list)
    return next_list


def _pure_phase(
    state: PPRState,
    graph: DynamicDiGraph,
    phase: Phase,
    config: PPRConfig,
    seeds: Iterable[int] | None,
    stats: PushStats,
) -> None:
    frontier = _prepare_seeds(state, phase, config.epsilon, seeds)
    iteration = _eager_iteration if config.variant.eager else _snapshot_iteration
    rounds = 0
    while frontier:
        rec = IterationRecord(phase=phase, frontier_size=len(frontier))
        next_frontier = iteration(state, graph, phase, config, frontier, rec)
        stats.record(rec)
        frontier = sorted(next_frontier)
        rounds += 1
        if rounds > config.max_iterations:
            raise ConvergenceError(rounds, state.residual_linf())


def parallel_local_push(
    state: PPRState,
    graph: DynamicDiGraph,
    config: PPRConfig,
    *,
    seeds: Iterable[int] | None = None,
    csr: CSRView | None = None,
) -> PushStats:
    """Run the parallel local push to convergence (``max |r| <= epsilon``).

    Dispatches on ``config.backend``: the pure reference engine works
    directly on the dynamic graph; the numpy and multiprocess engines
    require (or build) a snapshot of the *current* graph — either a
    frozen :class:`CSRGraph` or a delta overlay view
    (:class:`~repro.graph.delta.DeltaCSRGraph`); both satisfy the narrow
    degree/neighbors-array interface the engines consume. Seeds restrict
    the initial frontier scan — pass the vertices touched by
    restore-invariant.
    """
    state.ensure_capacity(graph.capacity)
    stats = PushStats()
    with obs.span(
        "push.run",
        backend=config.backend.value,
        variant=config.variant.value,
        source=state.source,
    ) as span:
        if config.backend is Backend.PURE:
            _pure_phase(state, graph, Phase.POS, config, seeds, stats)
            _pure_phase(state, graph, Phase.NEG, config, seeds, stats)
            span.set(iterations=stats.num_iterations)
            return stats
        # The snapshot must cover the source id even when the source is an
        # isolated vertex the graph has not seen yet.
        min_capacity = max(graph.capacity, state.source + 1)
        if config.backend is Backend.NUMPY:
            # kernel_phase picks the compiled C kernel or the vectorized
            # numpy oracle per REPRO_KERNEL / config.kernel (bit-identical
            # either way; see repro.kernels).
            from ..kernels import kernel_phase

            snapshot = (
                csr if csr is not None else CSRGraph.from_digraph(graph, min_capacity)
            )
            state.ensure_capacity(snapshot.num_vertices)
            used = kernel_phase(state, snapshot, Phase.POS, config, seeds, stats)
            kernel_phase(state, snapshot, Phase.NEG, config, seeds, stats)
            span.set(iterations=stats.num_iterations, kernel=used)
            return stats
        if config.backend is Backend.MULTIPROCESS:
            from ..parallel.multiproc import multiprocess_push

            snapshot = (
                csr if csr is not None else CSRGraph.from_digraph(graph, min_capacity)
            )
            state.ensure_capacity(snapshot.num_vertices)
            stats = multiprocess_push(state, snapshot, config, seeds=seeds, stats=stats)
            span.set(iterations=stats.num_iterations)
            return stats
        raise BackendError(f"unsupported backend: {config.backend!r}")
