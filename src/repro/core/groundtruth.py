"""Exact PPR solvers used as ground truth in tests and accuracy reports.

The convergent state of the local update scheme satisfies, for every
vertex ``v``, ``|P_s(v) - p*(v)| <= eps`` where ``p*`` is the fixpoint of
invariant Eq. 2 with zero residuals::

    p*(v) = alpha * 1{v = s} + (1 - alpha) / dout(v) * sum_{x in Nout(v)} p*(x)

i.e. ``p* = alpha e_s + (1 - alpha) D^{-1} A p*`` — the PPR value *of* ``s``
personalized *to* each vertex ``v`` (reverse / contribution PPR). Both a
power-iteration solver and a direct sparse linear solve are provided; they
agree to solver tolerance and serve as cross-checks of each other.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ConvergenceError
from ..graph.digraph import DynamicDiGraph
from ..utils.validation import check_fraction


def _out_csr(graph: DynamicDiGraph, capacity: int) -> sp.csr_matrix:
    """Row-stochastic-ish matrix ``M = D^{-1} A`` (rows of dangling vertices are 0)."""
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for u in graph.vertices():
        dout = graph.out_degree(u)
        if dout == 0:
            continue
        inv = 1.0 / dout
        for v, mult in graph.out_neighbors(u):
            rows.append(u)
            cols.append(v)
            vals.append(mult * inv)
    return sp.csr_matrix(
        (vals, (rows, cols)), shape=(capacity, capacity), dtype=np.float64
    )


def ground_truth_ppr(
    graph: DynamicDiGraph,
    source: int,
    alpha: float,
    *,
    tol: float = 1e-14,
    max_iterations: int = 10_000,
    capacity: int | None = None,
) -> np.ndarray:
    """Solve ``p = alpha e_s + (1-alpha) M p`` by fixed-point iteration.

    The iteration contracts with factor ``1 - alpha`` in the sup norm, so
    convergence to ``tol`` takes ``O(log(1/tol) / alpha)`` sweeps.
    """
    check_fraction("alpha", alpha)
    cap = max(graph.capacity, source + 1) if capacity is None else capacity
    matrix = _out_csr(graph, cap)
    e_s = np.zeros(cap)
    e_s[source] = alpha
    p = e_s.copy()
    for _ in range(max_iterations):
        nxt = e_s + (1.0 - alpha) * matrix.dot(p)
        delta = float(np.abs(nxt - p).max())
        p = nxt
        if delta <= tol:
            return p
    raise ConvergenceError(max_iterations, delta)


def ground_truth_linear(
    graph: DynamicDiGraph,
    source: int,
    alpha: float,
    *,
    capacity: int | None = None,
) -> np.ndarray:
    """Solve ``(I - (1-alpha) M) p = alpha e_s`` directly (sparse LU).

    Exact up to linear-solver round-off; preferred for small graphs and as
    an independent cross-check of :func:`ground_truth_ppr`.
    """
    check_fraction("alpha", alpha)
    cap = max(graph.capacity, source + 1) if capacity is None else capacity
    matrix = _out_csr(graph, cap)
    system = sp.identity(cap, format="csc") - (1.0 - alpha) * matrix.tocsc()
    rhs = np.zeros(cap)
    rhs[source] = alpha
    return spla.spsolve(system, rhs)


def max_estimate_error(
    estimate: np.ndarray,
    truth: np.ndarray,
) -> float:
    """``max_v |estimate[v] - truth[v]|`` with zero-padding to equal length."""
    cap = max(len(estimate), len(truth))
    a = np.zeros(cap)
    a[: len(estimate)] = estimate
    b = np.zeros(cap)
    b[: len(truth)] = truth
    return float(np.abs(a - b).max()) if cap else 0.0
