"""The shard coordinator: N shard processes behind one typed gateway.

:class:`ShardedGateway` implements the same request/response protocol as
:class:`repro.api.gateway.Gateway` — ``submit`` / ``submit_many`` /
``execute`` over the typed dataclasses of :mod:`repro.api` — so the
embedded :class:`~repro.api.client.Client`, the HTTP front-end, and
``repro serve`` work unchanged while the *graph itself* (not just read
load) is partitioned across processes:

* each shard owns a vertex slice — the in-adjacency rows and the
  per-source PPR state of the vertices its partitioner maps to it —
  while degrees, presence, and the graph version are replicated so every
  shard can compute push increments locally;
* **writes** ship to *every* shard as one WAL-framed batch; each shard
  applies it through its normal ingest path and logs it to its own
  store, so versions stay in lock-step and each shard can recover
  alone. Delete-carrying batches run a ``VALIDATE`` round first so the
  whole cluster rejects atomically (see ``docs/sharding.md``);
* **reads** route to the owning shard. A push that reaches a non-owned
  vertex blocks on a ``FETCH`` the coordinator relays to the owner
  (``EXCHANGE``/``EXCHANGED``/``FETCHED``); a shard blocked in a fetch
  keeps serving exchanges, which makes the relay star deadlock-free;
* **durability** is per-shard stores under one coordinator manifest
  (:mod:`repro.shard.manifest`): the coordinator drives checkpoint
  rounds and rewrites ``manifest.json`` only when every shard
  acknowledged the same version;
* **failures**: a dead shard is respawned from its own store (or, when
  storeless, from the seed snapshot plus the coordinator's frame
  history), healed to head with donor ``TAIL`` frames, and the
  interrupted request retried once. The ``shard.exchange`` chaos site
  models relay failures: a dropped or errored relay surfaces as a typed
  ``CLUSTER`` error on the requesting read, never a hang.

See ``docs/sharding.md`` for the topology, the bit-identity contract
against the single-process oracle, and the failure modes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from multiprocessing import connection as mp_connection
from collections import Counter
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from .. import chaos, obs
from ..api.admission import AdmissionController
from ..api.gateway import RESPONSE_FOR
from ..api.requests import (
    ApiRequest,
    BatchQuery,
    CheckpointNow,
    Deadline,
    Health,
    HubQuery,
    IngestBatch,
    Prefetch,
    Ready,
    ScoreQuery,
    Stats,
    TopKQuery,
)
from ..api.responses import (
    ApiResponse,
    BatchResult,
    CheckpointResult,
    ErrorInfo,
    HealthResult,
    IngestResult,
    PrefetchResult,
    ReadyResult,
    StatsResult,
    TopKResult,
)
from ..api.scheduling import ReadRun, plan_schedule, scatter_run_results
from ..chaos import FaultKind
from ..config import (
    ApiConfig,
    Backend,
    PPRConfig,
    ServeConfig,
    ShardConfig,
    StoreConfig,
)
from ..errors import (
    ClusterError,
    ConfigError,
    ConflictError,
    DeadlineError,
    OverloadError,
    ReproError,
)
from ..graph.digraph import DynamicDiGraph
from ..obs import clock
from ..store.wal import pack_record
from . import messages
from .manifest import read_manifest, shard_store_root, write_manifest
from .partitioner import (
    Partitioner,
    build_partitioner,
    partitioner_from_manifest,
)
from .worker import ShardSpec, shard_main

if TYPE_CHECKING:
    from ..api.client import Client

#: Worker-side stores never self-checkpoint: the coordinator drives
#: checkpoint rounds so the manifest only ever records epochs every
#: shard completed. An interval no workload reaches makes
#: ``maybe_checkpoint`` inert without a new config knob.
_INERT_INTERVAL = 1 << 60

#: Stats keys merged with max() instead of sum() across shards.
_MAX_HINTS = ("p50", "p90", "p95", "p99", "max")


class _ShardDied(Exception):
    """Internal control flow: the worker at ``index`` stopped answering."""


class _DeadlineExpired(Exception):
    """Internal control flow: a request's deadline lapsed mid-await."""


class ShardHandle:
    """Coordinator-side view of one shard worker process."""

    def __init__(
        self, spec: ShardSpec, ctx: multiprocessing.context.BaseContext
    ) -> None:
        self.spec = spec
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_main,
            args=(spec, child),
            name=f"ppr-shard-{spec.shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()
        #: Highest graph version this shard has acknowledged.
        self.applied_version = -1
        #: Reads/chunks dispatched to this shard (stats surface).
        self.dispatched = 0
        #: Tickets whose answers nobody awaits anymore (deadline-abandoned
        #: dispatches): late replies are absorbed, not protocol errors.
        self.abandoned: set[int] = set()
        #: Frames that arrived while awaiting something else (a reply
        #: overtaken by a relayed exchange); drained by the next await.
        self.pending: list[tuple] = []
        #: The pipe hit EOF: exclude it from poll sets (a closed pipe is
        #: permanently "ready", which would spin the await loops).
        self.broken = False

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, frame: tuple) -> None:
        try:
            self.conn.send(frame)
        except (OSError, ValueError) as exc:
            raise _ShardDied(str(exc)) from exc
        # Under fork, siblings inherit this pipe's fds, so a write into a
        # dead worker can succeed silently; the liveness check narrows
        # that window and the await poll loop is the backstop.
        if not self.process.is_alive():
            raise _ShardDied(f"{self.process.name} is not alive")

    def close(self, *, terminate: bool = False, timeout: float = 5.0) -> None:
        """Join the worker; ``terminate`` kills it outright (SIGKILL —
        a worker wedged under SIGSTOP never processes SIGTERM)."""
        if terminate and self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=timeout)
        self.conn.close()


class ShardedGateway:
    """Partitioned drop-in for :class:`~repro.api.gateway.Gateway`.

    Parameters
    ----------
    graph:
        The seed :class:`~repro.graph.digraph.DynamicDiGraph`. Its
        order-exact snapshot bootstraps every shard's slice; the
        coordinator keeps no engine of its own.
    shard:
        Topology knobs (:class:`repro.config.ShardConfig`).
    config:
        Protocol knobs (:class:`repro.config.ApiConfig`) — coalescing
        width, HTTP bind address, default consistency.
    ppr / serve:
        Engine configuration, forwarded to every shard's
        :class:`~repro.shard.service.ShardService` (``backend`` must be
        ``NUMPY``; the hub tier must be disabled).
    store_root / store_config:
        When given, each shard persists to its own store under
        ``store_root/shard-<NN>/`` and the coordinator maintains
        ``store_root/manifest.json`` (see :mod:`repro.shard.manifest`).

    Examples
    --------
    >>> from repro import DynamicDiGraph
    >>> from repro.api import TopKQuery
    >>> from repro.config import ShardConfig
    >>> from repro.shard import ShardedGateway
    >>> graph = DynamicDiGraph([(1, 0), (2, 0), (0, 1)])
    >>> gateway = ShardedGateway(graph, ShardConfig(shards=2))
    >>> response = gateway.submit(TopKQuery(source=0, k=2))
    >>> gateway.close()
    >>> response.ok and response.vertices[0] == 0
    True
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        shard: ShardConfig | None = None,
        config: ApiConfig | None = None,
        *,
        ppr: PPRConfig | None = None,
        serve: ServeConfig | None = None,
        store_root: str | None = None,
        store_config: StoreConfig | None = None,
    ) -> None:
        from ..config import Backend

        self.shard = shard or ShardConfig()
        self.config = config or ApiConfig()
        self.ppr = ppr or PPRConfig(backend=Backend.NUMPY)
        self.serve = (serve or ServeConfig()).with_(store=None)
        if self.ppr.backend is not Backend.NUMPY:
            raise ConfigError(
                "the sharded tier requires Backend.NUMPY"
                f" (got {self.ppr.backend.value})"
            )
        if self.serve.num_hubs > 0:
            raise ConfigError(
                "the sharded tier does not support the hub tier"
                " (set ServeConfig.num_hubs=0)"
            )
        self.partitioner: Partitioner = build_partitioner(self.shard, graph)
        self.store_root = store_root
        self.store_config = None
        if store_root is not None:
            self.store_config = store_config or StoreConfig(root=str(store_root))
        self._ctx = multiprocessing.get_context(self.shard.start_method)
        self._lock = threading.RLock()
        self._ticket = 0
        self.counters: Counter[str] = Counter()
        self.admission: AdmissionController | None = (
            AdmissionController(self.config.admission_queue)
            if self.config.admission_queue
            else None
        )
        self._respawn_counts: dict[int, int] = {}
        self._closed = False
        #: Acknowledged head version: every shard is at this version
        #: between requests (writes are synchronous ship-all-await-all).
        self._head = 0
        #: Coordinator's view of the registered vertex set — the routing
        #: and capacity-registration truth (see _ensure_registered).
        self._vertices: set[int] = set(graph.vertices())
        #: Ids registered via REGISTER broadcasts, in broadcast order;
        #: replayed onto revived shards (registrations are not WAL'd).
        self._registered: list[int] = []
        #: APPLY frames shipped so far. With a store, a bounded deque is
        #: enough (revival recovers from the shard's own store and heals
        #: the residue via donor TAIL frames); storeless, the full list
        #: is the only history a replacement can replay.
        if store_root is not None:
            from collections import deque

            self._history: Any = deque(maxlen=self.shard.history_frames)
        else:
            self._history = []
        self._seed_arrays: dict[str, Any] | None = graph.to_arrays()
        #: Shared-memory publication of the seed snapshot: one named
        #: segment every worker attaches and slices, instead of pickling
        #: the full dump down each spawn pipe.
        self._seed_bundle = None
        self._seed_shm: dict[str, Any] | None = None
        if self.shard.shared_memory:
            from ..graph.shm import SharedArrayBundle

            self._seed_bundle = SharedArrayBundle.create(
                self._seed_arrays, tag="shard-seed"
            )
            self._seed_shm = self._seed_bundle.descriptor
            # The segment is the seed's home now; keep no private copy.
            self._seed_arrays = None
        self._batches_since_checkpoint = 0
        #: Per-shard relay counters (the /v1/metrics satellite surface).
        self.exchange_rounds = [0] * self.shard.shards
        self.frontier_bytes = [0] * self.shard.shards
        #: Last STATUSED payload per shard (readyz/health answer from
        #: bookkeeping; refreshed by every stats/checkpoint round).
        self._last_status: dict[int, dict[str, Any]] = {}
        self.shards: list[ShardHandle] = []
        try:
            for index in range(self.shard.shards):
                self.shards.append(self._spawn(self._spec(index)))
            if self.store_root is not None:
                self._status_round()
                self._write_manifest()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _worker_store(self, index: int) -> tuple[str | None, StoreConfig | None]:
        if self.store_root is None:
            return None, None
        root = shard_store_root(self.store_root, index)
        cfg = dataclasses.replace(
            self.store_config,
            root=str(root),
            checkpoint_interval=_INERT_INTERVAL,
        )
        return str(root), cfg

    def _spec(self, index: int, *, recover: bool = False) -> ShardSpec:
        store_root, store_config = self._worker_store(index)
        return ShardSpec(
            shard_id=index,
            shards=self.shard.shards,
            config=self.ppr,
            serve=self.serve,
            partitioner_manifest=self.partitioner.to_manifest(),
            graph_arrays=None if recover else self._seed_arrays,
            graph_version=0,
            store_root=store_root,
            store_config=store_config,
            recover=recover,
            graph_shm=None if recover else self._seed_shm,
            obs=self.config.obs,
            chaos=chaos.INJECTOR.plan,
        )

    def _spawn(self, spec: ShardSpec, *, expect_head: bool = False) -> ShardHandle:
        handle = ShardHandle(spec, self._ctx)
        deadline = clock.now() + self.shard.spawn_timeout_s
        try:
            while not handle.conn.poll(0.05):
                if clock.now() > deadline or not handle.alive():
                    raise ClusterError(
                        f"shard {spec.shard_id} never completed its spawn"
                        " handshake"
                    )
            tag, version = handle.conn.recv()
        except (EOFError, OSError) as exc:
            handle.close(terminate=True)
            raise ClusterError(
                f"shard {spec.shard_id} died during spawn: {exc}"
            ) from exc
        except ClusterError:
            handle.close(terminate=True)
            raise
        if tag != messages.HELLO:
            handle.close(terminate=True)
            raise ClusterError(
                f"shard {spec.shard_id} sent {tag!r} instead of hello"
            )
        if expect_head and version > self._head:
            handle.close(terminate=True)
            raise ClusterError(
                f"shard {spec.shard_id} came up at v{version},"
                f" ahead of acked head v{self._head}"
            )
        handle.applied_version = version
        return handle

    def _revive(self, index: int) -> None:
        """Replace a dead shard and heal it back to the acked head.

        With a store the replacement recovers from its own checkpoint +
        WAL tail; without one it rebuilds from the seed snapshot. Either
        way any residual version gap is closed by replaying the
        coordinator's frame history (or donor ``TAIL`` frames), and
        broadcast-registered vertex ids — which are not WAL'd — are
        re-registered so capacities stay aligned across the fleet.
        """
        count = self._respawn_counts.get(index, 0) + 1
        if count > self.shard.max_respawns:
            raise ClusterError(
                f"shard {index} died and its respawn budget"
                f" ({self.shard.max_respawns}) is exhausted"
            )
        self._respawn_counts[index] = count
        obs.event("shard.crashed", shard=index, respawn=count)
        with obs.span("shard.respawn", shard=index):
            self.shards[index].close(terminate=True)
            recover = self.store_root is not None
            handle = self._spawn(
                self._spec(index, recover=recover), expect_head=True
            )
            self.shards[index] = handle
            self._heal(index)
            if self._registered:
                ticket = self._next_ticket()
                handle.send((messages.REGISTER, ticket, list(self._registered)))
                self._await_frame(index, messages.REGISTERED, ticket)
        self.counters["respawns"] += 1

    def _heal(self, index: int) -> None:
        """Replay frames until shard ``index`` acknowledges head version."""
        handle = self.shards[index]
        if handle.applied_version >= self._head:
            return
        frames = self._catch_up_frames(index, handle.applied_version)
        for frame in frames:
            ticket = self._next_ticket()
            handle.send((messages.APPLY, ticket, frame, None))
            reply = self._await_frame(index, messages.APPLIED, ticket)
            handle.applied_version = max(handle.applied_version, reply[2])
        if handle.applied_version != self._head:
            raise ClusterError(
                f"shard {index} healed to v{handle.applied_version},"
                f" head is v{self._head}"
            )

    def _catch_up_frames(self, index: int, after: int) -> list[bytes]:
        """Frames covering ``(after, head]`` — history first, donor TAIL
        when the bounded history no longer reaches back far enough."""
        from ..store.wal import unpack_payload

        frames = [f for f in self._history if unpack_payload(f)[0] > after]
        if frames and unpack_payload(frames[0])[0] == after + 1:
            return frames
        if not frames and after >= self._head:
            return []
        donor = max(
            (
                i
                for i, h in enumerate(self.shards)
                if i != index and h.alive()
            ),
            key=lambda i: self.shards[i].applied_version,
            default=None,
        )
        if donor is None:
            raise ClusterError(
                f"shard {index} is at v{after} with no donor to heal from"
            )
        ticket = self._next_ticket()
        self.shards[donor].send((messages.TAIL, ticket, after))
        reply = self._await_frame(donor, messages.TAILED, ticket)
        tail = list(reply[2])
        if not tail and after < self._head:
            raise ClusterError(
                f"shard {index} is at v{after}, head v{self._head}, and"
                f" donor {donor} has no WAL tail to heal it with"
            )
        return tail

    def close(self, *, deadline_s: float | None = None) -> None:
        """Drain and stop every worker (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            limit = clock.now() + deadline_s if deadline_s is not None else None
            for handle in self.shards:
                try:
                    handle.send((messages.SHUTDOWN,))
                except _ShardDied:
                    pass
            for handle in self.shards:
                if limit is None:
                    handle.close()
                else:
                    handle.close(
                        timeout=max(0.1, min(5.0, limit - clock.now()))
                    )
            if self._seed_bundle is not None:
                self._seed_bundle.unlink()
                self._seed_bundle.close()
                self._seed_bundle = None
                self._seed_shm = None

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # channel plumbing
    # ------------------------------------------------------------------ #

    def _next_ticket(self) -> int:
        self._ticket += 1
        return self._ticket

    def _take_pending(self, handle: ShardHandle, want: str, ticket: int):
        for i, frame in enumerate(handle.pending):
            if frame[0] == want and frame[1] == ticket:
                return handle.pending.pop(i)
        return None

    def _await_frame(
        self,
        index: int,
        want: str,
        ticket: int,
        deadline: Deadline | None = None,
    ) -> tuple:
        """Block until shard ``index`` answers ``(want, ticket, ...)``.

        While waiting, *every* shard's pipe is polled and drained, not
        just the target's: relay traffic — ``FETCH`` (forwarded to the
        owning peer as ``EXCHANGE``) and ``EXCHANGED`` (forwarded to the
        requester as ``FETCHED``) — is handled the moment it arrives on
        any pipe, and unrelated replies are buffered into their handle's
        pending list. Forwarding must be event-driven rather than
        awaited per-relay: a shard blocked in a fetch only progresses
        when its peer's reply is forwarded, and with chains like
        A->B->C->A in flight, a nested blocking wait on one pipe would
        consume (and strand) replies belonging to an outer relay.
        """
        handle = self.shards[index]
        buffered = self._take_pending(handle, want, ticket)
        if buffered is not None:
            return buffered
        timeout_at = clock.now() + self.shard.response_timeout_s
        while True:
            # Handles can be replaced under us (a relay reviving a dead
            # owner), so rebuild the poll set every beat.
            index_of = {
                id(h.conn): i
                for i, h in enumerate(self.shards)
                if not h.broken
            }
            ready = mp_connection.wait(
                [h.conn for i, h in enumerate(self.shards) if not h.broken],
                timeout=0.05,
            )
            got: tuple | None = None
            for conn in ready:
                i = index_of.get(id(conn))
                if i is None:
                    continue
                try:
                    frame = conn.recv()
                except (EOFError, OSError) as exc:
                    self.shards[i].broken = True
                    if i == index:
                        raise _ShardDied(str(exc)) from exc
                    continue
                if i == index and got is None:
                    got = self._sift(i, frame, want, ticket)
                else:
                    self._sift(i, frame, None, -1)
            if got is not None:
                return got
            target = self.shards[index]
            if target.broken or (
                not target.alive() and not target.conn.poll(0)
            ):
                raise _ShardDied(f"shard {index} exited")
            now = clock.now()
            if deadline is not None and deadline.expired(now):
                raise _DeadlineExpired(index)
            if now > timeout_at:
                raise _ShardDied(f"shard {index} timed out")

    def _sift(
        self, index: int, frame: tuple, want: str | None, ticket: int
    ) -> tuple | None:
        """Handle one received frame; return it only if it is the answer."""
        handle = self.shards[index]
        tag = frame[0]
        if want is not None and tag == want and frame[1] == ticket:
            return frame
        if tag == messages.FETCH:
            self._relay_fetch(index, frame)
            return None
        if tag == messages.EXCHANGED:
            self._forward_exchanged(frame)
            return None
        if tag == messages.BYE:
            return None
        if len(frame) > 1 and frame[1] in handle.abandoned:
            handle.abandoned.discard(frame[1])
            if tag in (messages.APPLIED, messages.RESPONSES):
                obs.ingest_spans(frame[4])
            return None
        handle.pending.append(frame)
        return None

    def _relay_fetch(self, requester: int, frame: tuple) -> None:
        """Relay one shard's row fetch to the owning peer (non-blocking).

        The owner's ``EXCHANGED`` reply is forwarded by whichever await
        loop reads it (:meth:`_forward_exchanged`) — the relay itself
        never waits. The ``shard.exchange`` chaos site models the
        relay's failure modes: DROP and ERROR answer the requester with
        ``FETCHED None`` (its push raises a typed ``CLUSTER`` error —
        never a hang); DELAY holds the relay one beat. A dead owner is
        revived and the relay retried once; a second failure degrades
        to ``None`` too.
        """
        _, ticket, owner, request = frame
        self.exchange_rounds[requester] += 1
        self.counters["exchange_rounds"] += 1
        fault = chaos.fire("shard.exchange", replica=requester)
        if fault is not None:
            if fault.kind is FaultKind.DELAY:
                time.sleep(0.05)
            else:
                # DROP / ERROR / anything else: the relay fails cleanly.
                self._answer_fetch(requester, ticket, None)
                return
        self.frontier_bytes[requester] += len(request)
        self.counters["frontier_bytes"] += len(request)
        for attempt in range(2):
            try:
                self.shards[owner].send(
                    (messages.EXCHANGE, ticket, requester, request)
                )
                return
            except _ShardDied:
                if attempt == 0:
                    try:
                        self._revive(owner)
                        continue
                    except ClusterError:
                        break
                break
        self._answer_fetch(requester, ticket, None)

    def _forward_exchanged(self, frame: tuple) -> None:
        """Forward one owner's row reply to the shard that fetched it.

        A reply for a requester that has since been replaced lands on
        the replacement, which skips it as a stale ticket (each worker
        has at most one fetch outstanding, under a fresh ticket).
        """
        _, ticket, requester, reply = frame
        self.frontier_bytes[requester] += len(reply)
        self.counters["frontier_bytes"] += len(reply)
        self._answer_fetch(requester, ticket, reply)

    def _answer_fetch(
        self, requester: int, ticket: int, reply: bytes | None
    ) -> None:
        try:
            self.shards[requester].send((messages.FETCHED, ticket, reply))
        except _ShardDied:
            # The requester died mid-fetch; the await loop on its own
            # reply detects the death and handles the retry.
            pass

    # ------------------------------------------------------------------ #
    # vertex registration (capacity lock-step)
    # ------------------------------------------------------------------ #

    def _ensure_registered(self, sources: Sequence[int]) -> None:
        """Broadcast-register never-seen vertex ids on every shard.

        The single-process engine registers unseen query sources at
        admission time, growing the graph's capacity; every shard must
        perform the same growth or state-vector lengths (and the push
        kernel's scatter strategy) would diverge across the fleet — and
        from the oracle. Registration is idempotent worker-side.
        """
        unseen: list[int] = []
        for source in sources:
            if source not in self._vertices and source not in unseen:
                unseen.append(int(source))
        if not unseen:
            return
        tickets: dict[int, int] = {}
        for index, handle in enumerate(self.shards):
            ticket = self._next_ticket()
            try:
                handle.send((messages.REGISTER, ticket, list(unseen)))
                tickets[index] = ticket
            except _ShardDied:
                self._revive(index)
                ticket = self._next_ticket()
                self.shards[index].send(
                    (messages.REGISTER, ticket, list(unseen))
                )
                tickets[index] = ticket
        for index, ticket in tickets.items():
            try:
                self._await_frame(index, messages.REGISTERED, ticket)
            except _ShardDied:
                self._revive(index)
                retry = self._next_ticket()
                self.shards[index].send(
                    (messages.REGISTER, retry, list(unseen))
                )
                self._await_frame(index, messages.REGISTERED, retry)
        self._vertices.update(unseen)
        self._registered.extend(unseen)

    # ------------------------------------------------------------------ #
    # the typed protocol
    # ------------------------------------------------------------------ #

    def submit(self, request: ApiRequest) -> ApiResponse:
        """Execute one request; failures become error-carrying responses."""
        try:
            if self.admission is not None:
                self.admission.admit(request)
                try:
                    return self.execute(request)
                finally:
                    self.admission.release()
            return self.execute(request)
        except ReproError as exc:
            self.counters["errors"] += 1
            if isinstance(exc, OverloadError):
                self.counters["shed"] += 1
            elif isinstance(exc, DeadlineError):
                self.counters["deadline_exceeded"] += 1
            shape = RESPONSE_FOR.get(type(request), ApiResponse)
            return shape.failure(
                ErrorInfo.from_exception(exc),
                snapshot_version=self._head,
            )

    def execute(self, request: ApiRequest) -> ApiResponse:
        """Execute one request, raising typed errors (the embedded path).

        Latency lands in ``shard.<op>`` stage histograms, distinct from
        both the single-process ``request.<op>`` and the replicated
        ``cluster.<op>`` stages.
        """
        queued = clock.now()
        with self._lock:
            waited = clock.now() - queued
            obs.observe("queue.wait", waited)
            source = getattr(request, "source", None)
            ctx = obs.trace_of(request)
            if ctx is None:
                with obs.measured(f"shard.{request.op}", source=source):
                    return self._execute(request)
            with obs.activate(ctx):
                obs.record_span(
                    "queue.wait", start=queued, duration=waited, observe=False
                )
                with obs.span("gateway.execute", op=request.op, tier="shard"):
                    with obs.measured(
                        f"shard.{request.op}",
                        trace_id=ctx.trace_id,
                        source=source,
                    ):
                        return self._execute(request)

    def _execute(self, request: ApiRequest) -> ApiResponse:
        with self._lock:
            if self._closed:
                raise ClusterError("sharded gateway is closed")
            try:
                return self._execute_routed(request)
            except (_ShardDied, _DeadlineExpired) as exc:
                raise ClusterError(
                    f"shard failure escaped the retry path: {exc}"
                ) from exc
            except (EOFError, BrokenPipeError, ConnectionError) as exc:
                raise ClusterError(
                    f"shard channel broke mid-request: {exc}"
                ) from exc

    def _execute_routed(self, request: ApiRequest) -> ApiResponse:
        self.counters[request.op] += 1
        deadline = getattr(request, "deadline", None)
        if deadline is not None and deadline.expired():
            raise deadline.to_error()
        if isinstance(request, IngestBatch):
            return self._execute_ingest(request)
        if isinstance(request, (TopKQuery, ScoreQuery)):
            self._ensure_registered([request.source])
            return self._dispatch_single(
                self.partitioner.owner(request.source), request
            )
        if isinstance(request, HubQuery):
            raise ConfigError(
                "the sharded tier does not support the hub tier"
            )
        if isinstance(request, BatchQuery):
            return self._execute_batch(request)
        if isinstance(request, Prefetch):
            return self._execute_prefetch(request)
        if isinstance(request, Stats):
            return self._execute_stats()
        if isinstance(request, Ready):
            return self._execute_ready()
        if isinstance(request, Health):
            return self._execute_health()
        if isinstance(request, CheckpointNow):
            return self._execute_checkpoint()
        raise ConfigError(
            f"the sharded tier cannot execute {request.op!r} requests"
        )

    # -- reads --------------------------------------------------------- #

    def _dispatch(
        self, index: int, requests: Sequence[ApiRequest], *, coalesce: bool
    ) -> int:
        """Ship a read chunk to one shard; returns the ticket to await."""
        ticket = self._next_ticket()
        handle = self.shards[index]
        ctx = obs.current()
        if ctx is not None:
            for request in requests:
                obs.attach(request, ctx)
        handle.send((messages.REQUESTS, ticket, tuple(requests), coalesce))
        handle.dispatched += 1
        return ticket

    def _dispatch_single(self, index: int, request: ApiRequest) -> ApiResponse:
        """One read on the owning shard, crash detection and one retry."""
        deadline = getattr(request, "deadline", None)
        try:
            ticket = self._dispatch(index, [request], coalesce=False)
            frame = self._await_frame(
                index, messages.RESPONSES, ticket, deadline
            )
        except _DeadlineExpired:
            raise self._abandon(index, deadline) from None
        except _ShardDied:
            return self._retry_single(index, request)
        return self._accept_responses(index, frame)[0]

    def _accept_responses(self, index: int, frame: tuple) -> list[ApiResponse]:
        handle = self.shards[index]
        handle.applied_version = max(handle.applied_version, frame[3])
        obs.ingest_spans(frame[4])
        return list(frame[2])

    def _abandon(self, index: int, deadline: Deadline | None) -> DeadlineError:
        """Replace a shard whose in-flight ticket was abandoned.

        The worker may still answer eventually; a late frame on the same
        pipe would poison later awaits, so the slot gets a fresh pipe
        (and, if the worker was wedged, a live process).
        """
        self._revive(index)
        assert deadline is not None
        return deadline.to_error()

    def _retry_single(self, index: int, request: ApiRequest) -> ApiResponse:
        deadline = getattr(request, "deadline", None)
        if deadline is not None and deadline.expired():
            self._revive(index)
            raise deadline.to_error()
        self._revive(index)
        try:
            ticket = self._dispatch(index, [request], coalesce=False)
            frame = self._await_frame(
                index, messages.RESPONSES, ticket, deadline
            )
        except _DeadlineExpired:
            raise self._abandon(index, deadline) from None
        except _ShardDied as exc:
            raise ClusterError(
                f"shard {index} died twice serving one request"
            ) from exc
        return self._accept_responses(index, frame)[0]

    def _scatter(
        self, per_shard: dict[int, ApiRequest]
    ) -> dict[int, ApiResponse]:
        """One request per shard, all shipped before any await."""
        tickets: dict[int, int] = {}
        results: dict[int, ApiResponse] = {}
        for index, request in per_shard.items():
            try:
                tickets[index] = self._dispatch(index, [request], coalesce=False)
            except _ShardDied:
                results[index] = self._retry_single(index, request)
        for index, request in per_shard.items():
            if index in results:
                continue
            deadline = getattr(request, "deadline", None)
            try:
                frame = self._await_frame(
                    index, messages.RESPONSES, tickets[index], deadline
                )
                results[index] = self._accept_responses(index, frame)[0]
            except _DeadlineExpired:
                for other, ticket in tickets.items():
                    if other != index and other not in results:
                        self.shards[other].abandoned.add(ticket)
                raise self._abandon(index, deadline) from None
            except _ShardDied:
                results[index] = self._retry_single(index, request)
        return results

    def _partition(self, sources: Sequence[int]) -> dict[int, list[int]]:
        """Group sources by owning shard, preserving per-chunk order."""
        chunks: dict[int, list[int]] = {}
        for source in sources:
            chunks.setdefault(self.partitioner.owner(source), []).append(source)
        return chunks

    def _execute_batch(self, request: BatchQuery) -> BatchResult:
        start = clock.now()
        self._ensure_registered(request.sources)
        chunks = self._partition(request.sources)
        by_position: dict[int, TopKResult] = {}
        source_positions: dict[int, list[int]] = {}
        for position, source in enumerate(request.sources):
            source_positions.setdefault(source, []).append(position)
        cursor = {source: 0 for source in source_positions}
        for _, chunk_sources, chunk_results in self._run_chunks(chunks, request):
            for source, result in zip(chunk_sources, chunk_results):
                assert isinstance(result, TopKResult)
                positions = source_positions[source]
                by_position[positions[cursor[source]]] = result
                cursor[source] += 1
        results = tuple(by_position[i] for i in range(len(request.sources)))
        return BatchResult(
            results=results,
            snapshot_version=self._head,
            staleness=max((r.staleness for r in results), default=0),
            wall_time_s=clock.now() - start,
        )

    def _run_chunks(self, chunks: dict[int, list[int]], request: BatchQuery):
        per_shard = {
            index: BatchQuery(
                sources=tuple(sources),
                k=request.k,
                consistency=request.consistency,
                deadline=request.deadline,
            )
            for index, sources in chunks.items()
        }
        results = self._scatter(per_shard)
        for index, sources in chunks.items():
            response = results[index]
            if response.error is not None:
                raise response.error.to_exception()
            assert isinstance(response, BatchResult)
            yield index, sources, response.results

    def _execute_prefetch(self, request: Prefetch) -> PrefetchResult:
        start = clock.now()
        self._ensure_registered(request.sources)
        per_shard = {
            index: Prefetch(sources=tuple(sources))
            for index, sources in self._partition(request.sources).items()
        }
        pending = 0
        for response in self._scatter(per_shard).values():
            if response.error is not None:
                raise response.error.to_exception()
            assert isinstance(response, PrefetchResult)
            pending += response.pending
        return PrefetchResult(
            requested=len(request.sources),
            pending=pending,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    # -- writes -------------------------------------------------------- #

    def _execute_ingest(self, request: IngestBatch) -> ApiResponse:
        """Ship one write batch to every shard, await every ack.

        Optimistic concurrency is checked coordinator-side against the
        acked head (every shard is at head between requests). A batch
        containing deletes runs a ``VALIDATE`` round first: each shard
        dry-runs its owned multiplicities through the batch order, and
        one veto rejects the batch atomically on *every* shard — the
        typed ``EDGE`` error matches the single-process engine's text.
        """
        start = clock.now()
        if request.snapshot is not None:
            raise ConfigError(
                "the sharded tier cannot install an external ingest snapshot"
            )
        if (
            request.expect_version is not None
            and request.expect_version != self._head
        ):
            raise ConflictError(request.expect_version, self._head)
        updates = list(request.updates)
        frame = pack_record(self._head + 1, updates)
        if any(u.is_delete for u in updates):
            self._validate_round(frame)
        ctx = obs.current()
        responses = self._apply_round(frame, ctx)
        previous = self._head
        self._head += 1
        self._history.append(frame)
        self._batches_since_checkpoint += 1
        self.counters["batches_shipped"] += 1
        for update in updates:
            self._vertices.add(update.u)
            self._vertices.add(update.v)
        pushes = 0
        traces: dict[int, Any] = {}
        for response in responses:
            if response is None:
                continue
            assert isinstance(response, IngestResult)
            pushes += response.pushes
            traces.update(response.traces)
        if (
            self.store_root is not None
            and self._batches_since_checkpoint
            >= self.store_config.checkpoint_interval
        ):
            self._checkpoint_round()
        return IngestResult(
            accepted=len(updates),
            previous_version=previous,
            pushes=pushes,
            traces=traces,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    def _validate_round(self, frame: bytes) -> None:
        """Dry-run a delete-carrying batch on every shard; one veto rejects."""
        tickets: dict[int, int] = {}
        for index, handle in enumerate(self.shards):
            ticket = self._next_ticket()
            try:
                handle.send((messages.VALIDATE, ticket, frame))
                tickets[index] = ticket
            except _ShardDied:
                self._revive(index)
                ticket = self._next_ticket()
                self.shards[index].send((messages.VALIDATE, ticket, frame))
                tickets[index] = ticket
        vetoes: list[tuple[int, ErrorInfo]] = []
        for index, ticket in tickets.items():
            try:
                reply = self._await_frame(index, messages.VALIDATED, ticket)
            except _ShardDied:
                self._revive(index)
                retry = self._next_ticket()
                self.shards[index].send((messages.VALIDATE, retry, frame))
                reply = self._await_frame(index, messages.VALIDATED, retry)
            if reply[2] is not None:
                vetoes.append(reply[2])
        if vetoes:
            # The earliest failing update is the one the single-process
            # engine would have raised on.
            _, info = min(vetoes, key=lambda veto: veto[0])
            raise info.to_exception()

    def _apply_round(self, frame: bytes, ctx: Any) -> list[ApiResponse | None]:
        """Ship one APPLY frame everywhere; await every APPLIED."""
        tickets: dict[int, int] = {}
        for index in range(len(self.shards)):
            tickets[index] = self._ship_apply(index, frame, ctx)
        responses: list[ApiResponse | None] = [None] * len(self.shards)
        with obs.span(
            "shard.ship_batch", seq=self._head + 1, shards=len(self.shards)
        ):
            for index, ticket in tickets.items():
                responses[index] = self._await_applied(index, ticket, frame, ctx)
        return responses

    def _ship_apply(self, index: int, frame: bytes, ctx: Any) -> int:
        ticket = self._next_ticket()
        try:
            self.shards[index].send((messages.APPLY, ticket, frame, ctx))
        except _ShardDied:
            self._revive(index)
            ticket = self._next_ticket()
            self.shards[index].send((messages.APPLY, ticket, frame, ctx))
        return ticket

    def _await_applied(
        self, index: int, ticket: int, frame: bytes, ctx: Any
    ) -> ApiResponse | None:
        for attempt in range(2):
            try:
                reply = self._await_frame(index, messages.APPLIED, ticket)
            except _ShardDied:
                if attempt == 0:
                    # The revive recovers the shard to the pre-batch head
                    # (its own WAL cannot contain this unacked batch), so
                    # the re-shipped frame is exactly seq head+1 again.
                    self._revive(index)
                    ticket = self._ship_apply(index, frame, ctx)
                    continue
                raise ClusterError(
                    f"shard {index} died twice applying one batch"
                ) from None
            handle = self.shards[index]
            handle.applied_version = max(handle.applied_version, reply[2])
            obs.ingest_spans(reply[4])
            response = reply[3]
            if response is not None and response.error is not None:
                # Unreachable for validated batches: inserts cannot fail
                # and deletes were vetoed before any shard mutated. If it
                # happens anyway the fleet has diverged — fail loudly.
                raise ClusterError(
                    f"shard {index} rejected an accepted batch"
                    f" ({response.error.message}): shard states diverged"
                )
            return response
        raise ClusterError("unreachable: apply retry loop exhausted")

    # -- durability ---------------------------------------------------- #

    def _checkpoint_round(self) -> str:
        """Drive a coordinated checkpoint epoch, then publish the manifest.

        Every shard checkpoints at the same version (shards are always
        at head between requests); the manifest is rewritten only after
        every ack, so a crash mid-round leaves the previous manifest —
        and every shard's own WAL tail — as the consistent recovery
        path.
        """
        if self.store_root is None:
            raise ConfigError(
                "no state store attached: pass store_root to ShardedGateway"
            )
        tickets: dict[int, int] = {}
        for index, handle in enumerate(self.shards):
            ticket = self._next_ticket()
            try:
                handle.send((messages.CHECKPOINT, ticket))
                tickets[index] = ticket
            except _ShardDied:
                self._revive(index)
                ticket = self._next_ticket()
                self.shards[index].send((messages.CHECKPOINT, ticket))
                tickets[index] = ticket
        info: dict[int, dict[str, Any]] = {}
        for index, ticket in tickets.items():
            try:
                reply = self._await_frame(index, messages.CHECKPOINTED, ticket)
            except _ShardDied:
                self._revive(index)
                retry = self._next_ticket()
                self.shards[index].send((messages.CHECKPOINT, retry))
                reply = self._await_frame(index, messages.CHECKPOINTED, retry)
            _, _, version, path = reply
            if version != self._head:
                raise ClusterError(
                    f"shard {index} checkpointed v{version},"
                    f" head is v{self._head}"
                )
            info[index] = {
                "shard": index,
                "version": version,
                "checkpoint": path,
            }
        path = self._write_manifest(
            [info[i] for i in range(len(self.shards))]
        )
        self._batches_since_checkpoint = 0
        self.counters["checkpoint_rounds"] += 1
        self._status_round()
        return str(path)

    def _write_manifest(
        self, shard_info: list[dict[str, Any]] | None = None
    ) -> str:
        if shard_info is None:
            shard_info = [
                {"shard": i, "version": self._head, "checkpoint": None}
                for i in range(len(self.shards))
            ]
        path = write_manifest(
            self.store_root,
            version=self._head,
            shards=self.shard.shards,
            partitioner_manifest=self.partitioner.to_manifest(),
            shard_info=shard_info,
        )
        return str(path)

    def _execute_checkpoint(self) -> CheckpointResult:
        start = clock.now()
        path = self._checkpoint_round()
        return CheckpointResult(
            path=path,
            written=True,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    # -- observability ------------------------------------------------- #

    def _status_round(self) -> dict[int, dict[str, Any]]:
        """One STATUS per shard (scatter); refreshes the readyz cache."""
        tickets: dict[int, int] = {}
        for index, handle in enumerate(self.shards):
            ticket = self._next_ticket()
            try:
                handle.send((messages.STATUS, ticket))
                tickets[index] = ticket
            except _ShardDied:
                continue
        payloads: dict[int, dict[str, Any]] = {}
        for index, ticket in tickets.items():
            try:
                reply = self._await_frame(index, messages.STATUSED, ticket)
            except _ShardDied:
                continue
            payloads[index] = reply[2]
            self._last_status[index] = reply[2]
        return payloads

    def _shard_section(self, payloads: dict[int, dict[str, Any]]) -> dict:
        n = len(self.shards)
        return {
            "shards": n,
            "partitioner": self.partitioner.to_manifest(),
            "head": self._head,
            "applied_versions": [h.applied_version for h in self.shards],
            "dispatched": [h.dispatched for h in self.shards],
            "respawns": self.counters["respawns"],
            "batches_shipped": self.counters["batches_shipped"],
            "checkpoint_rounds": self.counters["checkpoint_rounds"],
            "exchange_rounds": list(self.exchange_rounds),
            "frontier_bytes": list(self.frontier_bytes),
            "edges": [
                payloads.get(i, {}).get("owned_edges", 0) for i in range(n)
            ],
            "per_shard": [payloads.get(i, {}) for i in range(n)],
            "chaos": chaos.injected(),
            "gateway": dict(self.counters),
        }

    def _execute_stats(self) -> StatsResult:
        start = clock.now()
        payloads = self._status_round()
        stats: dict[str, Any] = _merge_stats(
            [p.get("metrics", {}) for p in payloads.values()]
        )
        stats["gateway"] = dict(self.counters)
        if self.admission is not None:
            stats["admission"] = self.admission.to_dict()
        stats["obs"] = obs.snapshot()
        stats["shard"] = self._shard_section(payloads)
        return StatsResult(
            stats=stats,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    def _execute_ready(self) -> ReadyResult:
        """Shard readiness from coordinator bookkeeping (non-blocking).

        Per-shard payloads blend live liveness/version bookkeeping with
        the last STATUS round's counts — a readiness probe must not
        block on the very shards it is asking about.
        """
        start = clock.now()
        replicas: list[dict[str, Any]] = []
        ready = True
        for index, handle in enumerate(self.shards):
            alive = handle.alive()
            if not alive:
                ready = False
            cached = self._last_status.get(index, {})
            replicas.append(
                {
                    "shard": index,
                    "alive": alive,
                    "role": "shard",
                    "applied_version": handle.applied_version,
                    "lag": max(0, self._head - handle.applied_version),
                    "exchange_backlog": len(handle.pending),
                    "num_vertices": cached.get("num_vertices", 0),
                    "num_edges": cached.get("num_edges", 0),
                    "owned_edges": cached.get("owned_edges", 0),
                }
            )
        return ReadyResult(
            ready=ready,
            status="ready" if ready else "degraded",
            primary="coordinator",
            epoch=0,
            replicas=tuple(replicas),
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    def _execute_health(self) -> HealthResult:
        """Liveness: the coordinator is up; counts from the status cache."""
        start = clock.now()
        cached = list(self._last_status.values())
        num_vertices = max((p.get("num_vertices", 0) for p in cached), default=0)
        num_edges = max((p.get("num_edges", 0) for p in cached), default=0)
        resident = sum(p.get("resident", 0) for p in cached)
        return HealthResult(
            status="ok",
            graph_version=self._head,
            num_vertices=num_vertices,
            num_edges=num_edges,
            resident=resident,
            hubs=0,
            snapshot_version=self._head,
            wall_time_s=clock.now() - start,
        )

    # ------------------------------------------------------------------ #
    # scheduling: mixed read/write traffic
    # ------------------------------------------------------------------ #

    def submit_many(
        self, requests: Sequence[ApiRequest], *, coalesce: bool | None = None
    ) -> list[ApiResponse]:
        """Run a request sequence in order, fanning read runs out.

        Same plan as the single-process scheduler; each coalesced run of
        same-shaped top-k reads splits into per-shard chunks executed
        concurrently. Routing is by ownership, so the answers are
        bit-identical to the single-process scheduler's for the same
        trace: each source's refresh/admission history lives on exactly
        one shard.
        """
        if coalesce is None:
            coalesce = self.config.coalesce_reads
        with self._lock:
            responses: list[ApiResponse | None] = [None] * len(requests)
            steps = plan_schedule(
                requests, coalesce=coalesce, max_batch=self.config.max_batch
            )
            for step in steps:
                if isinstance(step, ReadRun):
                    self._execute_run(requests, step, responses)
                else:
                    responses[step.position] = self.submit(requests[step.position])
            return [r for r in responses if r is not None]

    def _execute_run(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        responses: list[ApiResponse | None],
    ) -> None:
        lead = next(
            (
                ctx
                for ctx in (obs.trace_of(requests[p]) for p in run.positions)
                if ctx is not None
            ),
            None,
        )
        if lead is None:
            self._execute_run_inner(requests, run, responses)
            return
        with obs.activate(lead):
            with obs.span(
                "schedule.run",
                members=len(run.positions),
                coalesced=run.coalesced,
                tier="shard",
            ):
                self._execute_run_inner(requests, run, responses)

    def _execute_run_inner(
        self,
        requests: Sequence[ApiRequest],
        run: ReadRun,
        responses: list[ApiResponse | None],
    ) -> None:
        first = requests[run.positions[0]]
        assert isinstance(first, TopKQuery)
        self.counters["reads_coalesced"] += run.coalesced
        self._ensure_registered(run.sources)
        chunks = self._partition(run.sources)
        by_source: dict[int, TopKResult] = {}
        probe = BatchQuery(
            sources=run.sources,
            k=first.k,
            consistency=first.consistency,
            deadline=run.deadline,
        )
        try:
            for index, sources, results in self._run_chunks(chunks, probe):
                del index
                for source, result in zip(sources, results):
                    assert isinstance(result, TopKResult)
                    by_source[source] = result
        except ReproError as exc:
            self.counters["errors"] += 1
            error = ErrorInfo.from_exception(exc)
            by_source = {
                source: TopKResult.failure(
                    error,
                    snapshot_version=self._head,
                    source=source,
                )
                for source in run.sources
            }
        scatter_run_results(requests, run, by_source, responses)

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    @classmethod
    def recover(
        cls,
        store_root: str,
        *,
        config: ApiConfig | None = None,
        store_config: StoreConfig | None = None,
    ) -> "ShardedGateway":
        """Cold-start a sharded gateway from its manifest and shard stores.

        Each shard recovers alone (own newest checkpoint + own WAL
        tail); the coordinator then heals any residual version skew with
        donor ``TAIL`` frames, so shards whose crash interleaved with
        in-flight batches converge to the fleet maximum. Engine
        configuration comes back from the shard checkpoints themselves.
        """
        manifest = read_manifest(store_root)
        partitioner = partitioner_from_manifest(manifest.partitioner)
        self = cls.__new__(cls)
        self.shard = ShardConfig(
            shards=manifest.shards,
            partitioner=partitioner.kind,
        )
        self.config = config or ApiConfig()
        self.partitioner = partitioner
        self.store_root = store_root
        self.store_config = store_config or StoreConfig(root=str(store_root))
        self._ctx = multiprocessing.get_context(self.shard.start_method)
        self._lock = threading.RLock()
        self._ticket = 0
        self.counters = Counter()
        self.admission = (
            AdmissionController(self.config.admission_queue)
            if self.config.admission_queue
            else None
        )
        self._respawn_counts = {}
        self._closed = False
        self._head = 0
        #: Empty on purpose: every id queried after recovery goes through
        #: one idempotent REGISTER broadcast, re-aligning presence bits
        #: that broadcast registration (not WAL'd) may have left skewed.
        self._vertices = set()
        self._registered = []
        from collections import deque

        self._history = deque(maxlen=self.shard.history_frames)
        self._seed_arrays = None
        self._seed_bundle = None
        self._seed_shm = None
        self._batches_since_checkpoint = 0
        self.exchange_rounds = [0] * self.shard.shards
        self.frontier_bytes = [0] * self.shard.shards
        self._last_status = {}
        # Config mirrors ride every spec; recovered spawns rebuild from
        # their own stores (engine config comes from the checkpoints), so
        # safe NUMPY defaults are all the coordinator needs here.
        self.ppr = PPRConfig(backend=Backend.NUMPY)
        self.serve = ServeConfig()
        self.shards = []
        try:
            for index in range(self.shard.shards):
                self.shards.append(self._spawn(self._spec(index, recover=True)))
            self._head = max(h.applied_version for h in self.shards)
            for index in range(len(self.shards)):
                self._heal(index)
            self._status_round()
        except BaseException:
            self.close()
            raise
        return self

    def __repr__(self) -> str:
        return (
            f"ShardedGateway(shards={len(self.shards)},"
            f" partitioner={self.partitioner!r}, head=v{self._head})"
        )


def _merge_stats(payloads: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge per-shard metrics dicts: counters sum, percentiles max."""
    merged: dict[str, Any] = {}
    for payload in payloads:
        for key, value in payload.items():
            if isinstance(value, dict):
                base = merged.get(key)
                merged[key] = _merge_stats(
                    [base, value] if isinstance(base, dict) else [value]
                )
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            elif key not in merged:
                merged[key] = value
            elif any(hint in key for hint in _MAX_HINTS):
                merged[key] = max(merged[key], value)
            else:
                merged[key] = merged[key] + value
    return merged


class PPRShards:
    """User-facing handle on a sharded serving tier.

    Wraps a :class:`ShardedGateway`; use as a context manager so shard
    workers are always drained:

    >>> from repro import DynamicDiGraph
    >>> from repro.config import ShardConfig
    >>> from repro.shard import PPRShards
    >>> graph = DynamicDiGraph([(1, 0), (2, 0), (0, 1)])
    >>> with PPRShards(graph, ShardConfig(shards=2)) as shards:
    ...     answer = shards.api.top_k(0, k=2)
    >>> answer.vertices[0]
    0
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        shard: ShardConfig | None = None,
        config: ApiConfig | None = None,
        **kwargs: Any,
    ) -> None:
        self.gateway = ShardedGateway(graph, shard, config, **kwargs)

    @property
    def api(self) -> "Client":
        """An embedded typed client bound to the sharded gateway."""
        from ..api.client import Client

        return Client(self.gateway)

    def close(self) -> None:
        self.gateway.close()

    def __enter__(self) -> "PPRShards":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"PPRShards(gateway={self.gateway!r})"
