"""The partitioned dynamic graph one shard process holds.

A :class:`ShardGraph` is one shard's slice of the logical
:class:`~repro.graph.digraph.DynamicDiGraph`: it stores the **complete
in-adjacency row** of every vertex the partitioner assigns to this
shard, and only *dense degree/presence arrays* — 17 bytes per vertex —
for everything else. The expensive structure (nested adjacency dicts,
~100+ bytes per edge) is partitioned; the cheap per-vertex summaries are
replicated, because the push engines need every target's out-degree
(``(1 - alpha) * w / dout[target]``) and the restore-invariant needs
``out_degree(u)`` for arbitrary ``u``. Every shard applies **every**
write batch (updating its replicated arrays and whichever owned rows the
batch touches), so graph versions, capacities, and degree arrays stay in
lock-step across the fleet without any cross-shard coordination beyond
the batch itself.

Owned rows follow the oracle's dict discipline *exactly* — same
insertion order, same multiplicity arithmetic, same
:class:`~repro.errors.EdgeError` text — because the frontier-exchange
protocol promises that a row fetched from its owner is bit-identical to
the row a single-process :class:`CSRGraph` snapshot would have stored
(``docs/sharding.md``).

:class:`ShardCSRView` adapts a live :class:`ShardGraph` to the ``CSRView``
protocol the vectorized push engine consumes (``num_vertices``, ``dout``,
``gather_in_edges``), resolving non-owned rows through a pluggable
``fetch`` callable and exposing the ``prefetch_rows`` hook
(:func:`repro.core.push_vectorized.vectorized_phase`) so each push
iteration fetches all its remote rows in one batched round per owner.
The view is *live* — always at the graph's current version — which is
sound because the coordinator serializes pushes against mutation.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Callable, Iterator, Sequence
from typing import Any

import numpy as np

from ..errors import ClusterError, ConfigError, EdgeError, VertexError
from ..graph.update import EdgeOp, EdgeUpdate
from .partitioner import Partitioner, partitioner_from_manifest

#: ``fetch(owner, ids, weights) -> {id: in_row}`` — resolve remote rows.
FetchFn = Callable[[int, np.ndarray, np.ndarray], dict[int, np.ndarray]]


class ShardGraph:
    """One shard's partition of the logical dynamic multigraph.

    Parameters
    ----------
    partitioner:
        The fleet-wide vertex placement function; ``owner(v)`` decides
        which in-rows this instance stores.
    shard_id:
        This shard's index in ``[0, partitioner.num_shards)``.
    """

    __slots__ = (
        "partitioner",
        "shard_id",
        "_in",
        "_dout",
        "_din",
        "_present",
        "_rows",
        "_num_vertices",
        "_num_edges",
        "_owned_edges",
        "_max_vertex",
    )

    def __init__(self, partitioner: Partitioner, shard_id: int) -> None:
        if not 0 <= shard_id < partitioner.num_shards:
            raise ConfigError(
                f"shard_id must be in [0, {partitioner.num_shards}), got {shard_id}"
            )
        self.partitioner = partitioner
        self.shard_id = shard_id
        # Owned in-adjacency rows, oracle dict discipline: v -> {u: count}.
        self._in: dict[int, dict[int, int]] = {}
        # Replicated dense per-vertex summaries (backing arrays grow
        # geometrically; the logical prefix is [:capacity]).
        self._dout = np.zeros(0, dtype=np.int64)
        self._din = np.zeros(0, dtype=np.int64)
        self._present = np.zeros(0, dtype=bool)
        # Expanded-row cache (np.repeat output), invalidated per mutated row.
        self._rows: dict[int, np.ndarray] = {}
        self._num_vertices = 0
        self._num_edges = 0
        self._owned_edges = 0
        self._max_vertex = -1

    # ------------------------------------------------------------------ #
    # vertices
    # ------------------------------------------------------------------ #

    def _grow(self, capacity: int) -> None:
        if capacity <= len(self._present):
            return
        size = max(capacity, 2 * len(self._present), 16)
        for name in ("_dout", "_din"):
            old = getattr(self, name)
            new = np.zeros(size, dtype=np.int64)
            new[: len(old)] = old
            setattr(self, name, new)
        present = np.zeros(size, dtype=bool)
        present[: len(self._present)] = self._present
        self._present = present

    def add_vertex(self, u: int) -> None:
        """Register ``u`` (no-op when already present)."""
        if u < 0:
            raise VertexError(u, f"vertex ids must be >= 0, got {u}")
        self._grow(u + 1)
        if not self._present[u]:
            self._present[u] = True
            self._num_vertices += 1
            if u > self._max_vertex:
                self._max_vertex = u

    def has_vertex(self, u: int) -> bool:
        return 0 <= u < len(self._present) and bool(self._present[u])

    def vertices(self) -> Iterator[int]:
        """All vertex ids ever seen, in ascending id order.

        Unlike the oracle this is *not* insertion order — the shard keeps
        no per-vertex dict to remember it. Nothing numeric consumes this
        order (the sharded tier never builds a CSR from it); it exists
        for stats and debugging.
        """
        return iter(np.flatnonzero(self._present).tolist())

    def owns(self, v: int) -> bool:
        """Whether this shard stores ``v``'s in-adjacency row."""
        return self.partitioner.owner(v) == self.shard_id

    def owned_vertices(self) -> np.ndarray:
        """Present vertex ids this shard owns (ascending)."""
        ids = np.flatnonzero(self._present).astype(np.int64)
        if not ids.size:
            return ids
        return ids[self.partitioner.owners(ids) == self.shard_id]

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def max_vertex_id(self) -> int:
        return self._max_vertex

    @property
    def capacity(self) -> int:
        """Array length needed to index every vertex (``max_vertex_id + 1``)."""
        return self._max_vertex + 1

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int, count: int = 1) -> None:
        """Insert ``count`` parallel copies of edge ``u -> v``."""
        if count < 1:
            raise EdgeError(u, v, f"count must be >= 1, got {count}")
        self.add_vertex(u)
        self.add_vertex(v)
        self._dout[u] += count
        self._din[v] += count
        self._num_edges += count
        if self.owns(v):
            row = self._in.get(v)
            if row is None:
                row = self._in[v] = {}
            row[u] = row.get(u, 0) + count
            self._owned_edges += count
            self._rows.pop(v, None)

    def remove_edge(self, u: int, v: int, count: int = 1) -> None:
        """Delete ``count`` copies of edge ``u -> v``.

        Only ``v``'s owner holds the multiplicity and can actually
        validate the delete (raising the oracle's exact
        :class:`~repro.errors.EdgeError`); a non-owning shard *trusts*
        that the coordinator ran its cross-shard ``VALIDATE`` round first
        and merely adjusts its replicated degree arrays. Feeding a
        non-owning shard an unvalidated delete is a protocol violation,
        caught here only when the endpoints were never registered.
        """
        if count < 1:
            raise EdgeError(u, v, f"count must be >= 1, got {count}")
        if self.owns(v):
            existing = self._in.get(v, {}).get(u, 0)
            if existing < count:
                raise EdgeError(
                    u, v,
                    f"cannot delete {count} copies of {u}->{v}:"
                    f" multiplicity is {existing}",
                )
            if existing == count:
                del self._in[v][u]
            else:
                self._in[v][u] = existing - count
            self._owned_edges -= count
            self._rows.pop(v, None)
        elif not (self.has_vertex(u) and self.has_vertex(v)):
            raise EdgeError(
                u, v,
                f"cannot delete unvalidated edge {u}->{v} on shard"
                f" {self.shard_id} (owner is {self.partitioner.owner(v)})",
            )
        self._dout[u] -= count
        self._din[v] -= count
        self._num_edges -= count

    @property
    def num_edges(self) -> int:
        """Total edge count of the *logical* graph, with multiplicities."""
        return self._num_edges

    @property
    def owned_edges(self) -> int:
        """Edges whose in-row lives on this shard, with multiplicities."""
        return self._owned_edges

    # ------------------------------------------------------------------ #
    # degrees / rows
    # ------------------------------------------------------------------ #

    def out_degree(self, u: int) -> int:
        """Out-degree with multiplicity; 0 for unknown vertices."""
        if 0 <= u < len(self._dout):
            return int(self._dout[u])
        return 0

    def in_degree(self, u: int) -> int:
        """In-degree with multiplicity; 0 for unknown vertices."""
        if 0 <= u < len(self._din):
            return int(self._din[u])
        return 0

    @property
    def dout(self) -> np.ndarray:
        """Dense out-degree array over ``[0, capacity)`` (a live view)."""
        return self._dout[: self.capacity]

    @property
    def din(self) -> np.ndarray:
        """Dense in-degree array over ``[0, capacity)`` (a live view)."""
        return self._din[: self.capacity]

    def in_row(self, v: int) -> np.ndarray:
        """Dense in-adjacency row of owned vertex ``v``, order-exact.

        Bit-identical to :meth:`DynamicDiGraph.in_row
        <repro.graph.digraph.DynamicDiGraph.in_row>` on the oracle:
        neighbors in row-dict insertion order, parallel copies
        contiguous. Cached per row; mutation invalidates the cache.
        """
        row = self._rows.get(v)
        if row is not None:
            return row
        nbrs = self._in.get(v)
        if not nbrs:
            row = np.empty(0, dtype=np.int64)
        else:
            ids = np.fromiter(nbrs.keys(), dtype=np.int64, count=len(nbrs))
            counts = np.fromiter(nbrs.values(), dtype=np.int64, count=len(nbrs))
            row = np.repeat(ids, counts)
        self._rows[v] = row
        return row

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def apply(self, update: EdgeUpdate) -> None:
        """Apply one edge update."""
        if update.op is EdgeOp.INSERT:
            self.add_edge(update.u, update.v)
        else:
            self.remove_edge(update.u, update.v)

    def validate_batch(
        self, updates: Sequence[EdgeUpdate]
    ) -> tuple[int, EdgeError] | None:
        """Simulate a batch against this shard's owned rows, no mutation.

        Returns ``(index, error)`` for the first update this shard's
        owned multiplicities reject when the batch is applied in order
        (the error carries the oracle's exact message for that position),
        or ``None`` when every owned delete is covered. The coordinator
        takes the minimum index across shards, so an invalid batch is
        rejected *atomically* — no shard has mutated anything — where the
        single-process oracle would have stopped mid-batch.
        """
        delta: dict[tuple[int, int], int] = {}
        for index, update in enumerate(updates):
            if not self.owns(update.v):
                continue
            key = (update.u, update.v)
            if update.op is EdgeOp.INSERT:
                delta[key] = delta.get(key, 0) + 1
                continue
            existing = self._in.get(update.v, {}).get(update.u, 0) + delta.get(key, 0)
            if existing < 1:
                return index, EdgeError(
                    update.u, update.v,
                    f"cannot delete 1 copies of {update.u}->{update.v}:"
                    f" multiplicity is {existing}",
                )
            delta[key] = delta.get(key, 0) - 1
        return None

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #

    @classmethod
    def from_full_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        partitioner: Partitioner,
        shard_id: int,
    ) -> "ShardGraph":
        """Carve this shard's slice out of a full-graph ``to_arrays()`` dump.

        The oracle's ``in_edges`` triples arrive in nested dict order;
        filtering them to owned rows preserves that relative order, so
        the rebuilt ``_in`` dicts iterate exactly as they would had this
        shard applied the whole history incrementally.
        """
        g = cls(partitioner, shard_id)
        vertices = np.asarray(arrays["vertices"], dtype=np.int64)
        if vertices.size:
            g._grow(int(vertices.max()) + 1)
            for u in vertices.tolist():
                g.add_vertex(u)
        out_edges = np.asarray(arrays["out_edges"], dtype=np.int64).reshape(-1, 3)
        in_edges = np.asarray(arrays["in_edges"], dtype=np.int64).reshape(-1, 3)
        if len(out_edges):
            np.add.at(g._dout, out_edges[:, 0], out_edges[:, 2])
        if len(in_edges):
            np.add.at(g._din, in_edges[:, 0], in_edges[:, 2])
        g._num_edges = int(out_edges[:, 2].sum()) if len(out_edges) else 0
        if len(in_edges):
            owned = partitioner.owners(in_edges[:, 0]) == shard_id
            for v, u, count in in_edges[owned].tolist():
                row = g._in.get(v)
                if row is None:
                    row = g._in[v] = {}
                row[u] = count
                g._owned_edges += count
        return g

    def to_arrays(self) -> dict[str, Any]:
        """Serialize this shard's slice order-exactly to plain arrays.

        The owned-row triples record dict iteration order the same way
        the oracle's codec does, so a checkpoint/restore cycle leaves
        ``in_row`` output bit-identical. ``meta`` embeds the partitioner
        manifest, making the payload self-describing for recovery.
        """
        capacity = self.capacity
        in_rows = [
            (v, u, c) for v, nbrs in self._in.items() for u, c in nbrs.items()
        ]
        meta = {
            "shard": self.shard_id,
            "shards": self.partitioner.num_shards,
            "partitioner": self.partitioner.to_manifest(),
            "max_vertex": self._max_vertex,
            "num_vertices": self._num_vertices,
            "num_edges": self._num_edges,
            "owned_edges": self._owned_edges,
        }
        return {
            "meta": np.asarray(json.dumps(meta)),
            "present": self._present[:capacity].copy(),
            "dout": self._dout[:capacity].copy(),
            "din": self._din[:capacity].copy(),
            "in_edges": np.array(in_rows, dtype=np.int64).reshape(-1, 3),
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, Any], partitioner: Partitioner | None = None
    ) -> "ShardGraph":
        """Rebuild a shard slice serialized by :meth:`to_arrays`."""
        meta = json.loads(str(np.asarray(arrays["meta"])))
        if partitioner is None:
            partitioner = partitioner_from_manifest(meta["partitioner"])
        if partitioner.num_shards != int(meta["shards"]):
            raise ConfigError(
                f"checkpoint written for {meta['shards']} shards,"
                f" partitioner has {partitioner.num_shards}"
            )
        g = cls(partitioner, int(meta["shard"]))
        present = np.asarray(arrays["present"], dtype=bool)
        g._grow(len(present))
        g._present[: len(present)] = present
        g._dout[: len(present)] = np.asarray(arrays["dout"], dtype=np.int64)
        g._din[: len(present)] = np.asarray(arrays["din"], dtype=np.int64)
        g._max_vertex = int(meta["max_vertex"])
        g._num_vertices = int(meta["num_vertices"])
        g._num_edges = int(meta["num_edges"])
        g._owned_edges = int(meta["owned_edges"])
        for v, u, count in np.asarray(
            arrays["in_edges"], dtype=np.int64
        ).reshape(-1, 3).tolist():
            row = g._in.get(v)
            if row is None:
                row = g._in[v] = {}
            row[u] = count
        return g

    # ------------------------------------------------------------------ #
    # accounting / debugging
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Resident bytes of this shard's graph structures.

        Dense arrays by ``nbytes`` (backing length — what is actually
        resident), dict structure by ``sys.getsizeof`` of each table
        (the same accounting ``benchmarks/bench_shard.py`` applies to the
        single-process baseline).
        """
        total = self._dout.nbytes + self._din.nbytes + self._present.nbytes
        total += sys.getsizeof(self._in)
        for nbrs in self._in.values():
            total += sys.getsizeof(nbrs)
        total += sys.getsizeof(self._rows)
        for row in self._rows.values():
            total += row.nbytes
        return total

    def check_consistency(self) -> None:
        """Validate internal invariants (used by tests; O(n + rows))."""
        assert self._num_vertices == int(self._present.sum()), "presence count"
        owned_total = 0
        for v, nbrs in self._in.items():
            assert self.owns(v), f"non-owned row {v} stored on shard {self.shard_id}"
            row_sum = sum(nbrs.values())
            owned_total += row_sum
            assert row_sum == self.in_degree(v), f"din mismatch at {v}"
        assert owned_total == self._owned_edges, "owned edge count"
        cap = self.capacity
        assert int(self._dout[:cap].sum()) == self._num_edges, "dout mass"
        assert int(self._din[:cap].sum()) == self._num_edges, "din mass"

    def __repr__(self) -> str:
        return (
            f"ShardGraph(shard={self.shard_id}/{self.partitioner.num_shards},"
            f" n={self.num_vertices}, m={self.num_edges},"
            f" owned_edges={self._owned_edges})"
        )


class ShardCSRView:
    """Live ``CSRView`` adapter over one :class:`ShardGraph`.

    Quacks like the frozen :class:`~repro.graph.csr.CSRGraph` where the
    vectorized push engine is concerned — ``num_vertices``, ``dout``,
    ``gather_in_edges`` — but reads the live shard graph, so it is
    always at the current version and never rebuilt. Rows this shard
    does not own resolve through ``fetch`` (one batched round per owner
    per push iteration, via the engine's ``prefetch_rows`` hook); the
    fetched rows are cached until :meth:`clear_remote`, which the
    sharded service calls before every applied batch.
    """

    __slots__ = ("graph", "_fetch", "_remote")

    def __init__(self, graph: ShardGraph, fetch: FetchFn | None = None) -> None:
        self.graph = graph
        self._fetch = fetch
        self._remote: dict[int, np.ndarray] = {}

    def bind_fetch(self, fetch: FetchFn | None) -> None:
        """Install the remote-row resolver (the worker's exchange channel)."""
        self._fetch = fetch

    # -- CSRView protocol ------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        return self.graph.capacity

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def dout(self) -> np.ndarray:
        return self.graph.dout

    def ensure_covers(self, capacity: int) -> None:
        if self.num_vertices < capacity:
            raise ConfigError(
                f"snapshot covers {self.num_vertices} ids,"
                f" graph needs {capacity}"
            )

    def gather_in_edges(self, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """In-edges of ``frontier``, order-exact with the oracle's CSR.

        Rows concatenate in frontier order, each row in its owner's
        insertion order — exactly the sequence
        :meth:`CSRGraph.gather_in_edges
        <repro.graph.csr.CSRGraph.gather_in_edges>` produces, so the
        float summation order inside the push (and hence the certified
        top-k) is bit-identical to the single-process engine.
        """
        rows = [self._row(int(v)) for v in np.asarray(frontier, dtype=np.int64)]
        counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=len(rows))
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sources = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
        return sources, np.concatenate(rows)

    # -- distributed resolution ------------------------------------------ #

    def prefetch_rows(self, frontier: np.ndarray, weights: np.ndarray) -> None:
        """Fetch every remote row of ``frontier`` in one round per owner.

        Invoked by :func:`repro.core.push_vectorized.vectorized_phase` at
        the top of each push iteration. ``weights`` is the residual mass
        the iteration is about to push from each frontier vertex; it
        rides the frontier frame for observability.
        """
        graph = self.graph
        frontier = np.asarray(frontier, dtype=np.int64)
        owners = graph.partitioner.owners(frontier)
        remote = owners != graph.shard_id
        if not remote.any():
            return
        ids = frontier[remote]
        need = np.fromiter(
            (v not in self._remote for v in ids.tolist()),
            dtype=bool,
            count=len(ids),
        )
        if not need.any():
            return
        ids = ids[need]
        masses = np.asarray(weights, dtype=np.float64)[remote][need]
        id_owners = owners[remote][need]
        for owner in np.unique(id_owners).tolist():
            mask = id_owners == owner
            self._absorb(int(owner), ids[mask], masses[mask])

    def _absorb(self, owner: int, ids: np.ndarray, masses: np.ndarray) -> None:
        rows = self._require_fetch()(owner, ids, masses)
        self._remote.update(rows)
        missing = [int(v) for v in ids.tolist() if v not in self._remote]
        if missing:
            raise ClusterError(
                f"shard {owner} answered a frontier fetch without rows"
                f" for {missing[:5]}"
            )

    def _row(self, v: int) -> np.ndarray:
        graph = self.graph
        if graph.owns(v):
            return graph.in_row(v)
        row = self._remote.get(v)
        if row is None:
            # Fallback for callers outside the push loop (no prefetch).
            self._absorb(
                graph.partitioner.owner(v),
                np.array([v], dtype=np.int64),
                np.zeros(1, dtype=np.float64),
            )
            row = self._remote[v]
        return row

    def _require_fetch(self) -> FetchFn:
        if self._fetch is None:
            raise ClusterError(
                f"shard {self.graph.shard_id} needs a remote in-row but has"
                " no exchange channel (ShardCSRView.bind_fetch not called)"
            )
        return self._fetch

    def clear_remote(self) -> None:
        """Drop cached remote rows (stale once any batch applies)."""
        self._remote.clear()

    @property
    def remote_rows(self) -> int:
        """Currently-cached remote row count (stats surface)."""
        return len(self._remote)

    def memory_bytes(self) -> int:
        total = sys.getsizeof(self._remote)
        for row in self._remote.values():
            total += row.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"ShardCSRView(shard={self.graph.shard_id},"
            f" n={self.num_vertices}, remote_rows={len(self._remote)})"
        )
