"""Cross-shard durability: per-shard stores under one recovery manifest.

Each shard worker owns a full :class:`repro.store.StateStore` — its own
WAL segments and its own checkpoints, under ``<root>/shard-<NN>/`` — and
persists *exactly* what a single-process store would: every applied
batch is logged before it is acknowledged, checkpoints are atomic and
order-exact. What a shard's store cannot express alone is the *group*
property: which checkpoint epoch is consistent **across** shards.

That is the manifest's job. After every coordinated checkpoint round
(every shard acknowledged ``CHECKPOINTED`` at the same graph version)
the gateway atomically rewrites ``<root>/manifest.json``::

    {
      "format": 1,
      "version": <graph version of the completed round>,
      "shards": <N>,
      "partitioner": {...},        # Partitioner.to_manifest()
      "shard_info": [{"shard": i, "version": v, "checkpoint": name|null}, ...]
    }

Because each shard also keeps its WAL tail past its checkpoint, the
manifest version is a *floor*, not a fence: a recovering shard loads its
newest checkpoint and replays its own WAL tail forward, so shards whose
crash interleaved with in-flight batches still converge — the gateway
heals any residual version skew with donor ``TAIL`` frames at spawn.

Recovery of one shard (:func:`recover_shard`) mirrors
:func:`repro.store.recovery.recover` with two shard-specific twists:

* the graph inside the checkpoint is a :class:`ShardGraph` slice, decoded
  by its own self-describing codec (the ``graph_meta`` JSON carries the
  shard id and partitioner manifest);
* WAL replay runs with the refresh policy forced to ``LAZY``: the shard
  is alone during recovery — no coordinator is relaying frontier
  exchanges yet — so an ``EAGER`` policy would try remote fetches it
  cannot complete. Under ``LAZY`` (the default) this is bit-identical to
  the uninterrupted run; under ``EAGER`` the deferred refreshes happen
  at the first post-recovery query instead, converging to the same
  ε-certified answers. See ``docs/sharding.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..config import RefreshPolicy, StoreConfig
from ..core.state import PPRState
from ..errors import StoreError
from ..obs import clock
from ..serve.cache import ResidentSource
from ..store.checkpoint import (
    CHECKPOINT_FORMAT,
    _parse_ppr_config,
    _parse_serve_config,
    checkpoint_version,
    config_fingerprint,
    list_checkpoints,
)
from ..store.store import StateStore
from ..store.wal import WriteAheadLog
from .graph import ShardGraph
from .partitioner import Partitioner
from .service import ShardService

PathLike = str | os.PathLike

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


def shard_store_root(root: PathLike, shard_id: int) -> Path:
    """The store directory of shard ``shard_id`` under cluster root ``root``."""
    return Path(root) / f"shard-{shard_id:02d}"


# ---------------------------------------------------------------------- #
# the coordinator manifest
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardManifest:
    """One decoded ``manifest.json``: the last consistent checkpoint epoch."""

    path: Path
    version: int
    shards: int
    partitioner: dict[str, Any]
    shard_info: tuple[dict[str, Any], ...]


def write_manifest(
    root: PathLike,
    *,
    version: int,
    shards: int,
    partitioner_manifest: dict[str, Any],
    shard_info: list[dict[str, Any]],
) -> Path:
    """Atomically (re)write the cluster manifest after a checkpoint round.

    Same tmp-write + fsync + rename discipline as checkpoints: a crash
    mid-write leaves the previous manifest authoritative.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    final = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    payload = {
        "format": MANIFEST_FORMAT,
        "version": int(version),
        "shards": int(shards),
        "partitioner": partitioner_manifest,
        "shard_info": shard_info,
    }
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    return final


def read_manifest(root: PathLike) -> ShardManifest:
    """Load and validate ``<root>/manifest.json``.

    Raises :class:`StoreError` on a missing or structurally malformed
    manifest — recovery cannot guess the shard count or partitioner.
    """
    path = Path(root) / MANIFEST_NAME
    if not path.exists():
        raise StoreError(f"shard manifest not found: {path}")
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"unreadable shard manifest {path}: {exc}") from exc
    try:
        fmt = int(payload["format"])
        if fmt != MANIFEST_FORMAT:
            raise StoreError(
                f"{path.name}: unsupported manifest format {fmt}"
                f" (this build reads {MANIFEST_FORMAT})"
            )
        shards = int(payload["shards"])
        if shards < 1:
            raise StoreError(f"{path.name}: shards must be >= 1, got {shards}")
        partitioner = payload["partitioner"]
        if not isinstance(partitioner, dict):
            raise StoreError(f"{path.name}: partitioner must be an object")
        info = payload["shard_info"]
        if not isinstance(info, list) or len(info) != shards:
            raise StoreError(
                f"{path.name}: shard_info must list all {shards} shards"
            )
        return ShardManifest(
            path=path,
            version=int(payload["version"]),
            shards=shards,
            partitioner=partitioner,
            shard_info=tuple(dict(entry) for entry in info),
        )
    except StoreError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"corrupt shard manifest {path.name}: {exc}") from exc


# ---------------------------------------------------------------------- #
# per-shard checkpoints
# ---------------------------------------------------------------------- #


@dataclass
class ShardCheckpoint:
    """One decoded per-shard checkpoint, ready to restore a ShardService.

    The npz layout is exactly :func:`repro.store.checkpoint.write_checkpoint`'s
    (that writer is generic over ``service.graph.to_arrays()``); only the
    ``graph_*`` keys differ — they hold a :class:`ShardGraph` slice.
    """

    path: Path
    version: int
    updates_ingested: int
    batches_ingested: int
    config: Any
    serve: Any
    fingerprint: str
    graph: ShardGraph
    residents: list[ResidentSource]


def read_shard_checkpoint(
    path: PathLike, partitioner: Partitioner | None = None
) -> ShardCheckpoint:
    """Load and validate one per-shard checkpoint file.

    Mirrors :func:`repro.store.checkpoint.read_checkpoint`; the graph is
    rebuilt through :meth:`ShardGraph.from_arrays` (self-describing via
    the embedded ``graph_meta`` JSON, cross-checked against
    ``partitioner`` when given). Shard checkpoints never carry a hub
    tier — :class:`ShardService` refuses to build one.
    """
    path = Path(path)
    if not path.exists():
        raise StoreError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except Exception as exc:  # zip/CRC/format damage
        raise StoreError(f"unreadable checkpoint {path.name}: {exc}") from exc
    try:
        fmt = int(arrays["format"])
        if fmt != CHECKPOINT_FORMAT:
            raise StoreError(
                f"{path.name}: unsupported checkpoint format {fmt}"
                f" (this build reads {CHECKPOINT_FORMAT})"
            )
        config = _parse_ppr_config(str(arrays["ppr_config"]))
        serve = _parse_serve_config(str(arrays["serve_config"]))
        fingerprint = str(arrays["fingerprint"])
        if fingerprint != config_fingerprint(config, serve):
            raise StoreError(f"{path.name}: configuration fingerprint mismatch")
        if int(arrays["has_hubs"]):
            raise StoreError(
                f"{path.name}: shard checkpoints cannot carry a hub tier"
            )
        graph = ShardGraph.from_arrays(
            {
                key[len("graph_") :]: value
                for key, value in arrays.items()
                if key.startswith("graph_")
            },
            partitioner=partitioner,
        )
        residents: list[ResidentSource] = []
        state_offset = 0
        pending_offset = 0
        for i, source in enumerate(arrays["sources"].tolist()):
            length = int(arrays["resident_lengths"][i])
            state = PPRState.from_arrays(
                {
                    "source": np.int64(source),
                    "p": arrays["resident_p"][state_offset : state_offset + length],
                    "r": arrays["resident_r"][state_offset : state_offset + length],
                }
            )
            state_offset += length
            n_pending = int(arrays["pending_lengths"][i])
            seeds = set(
                arrays["pending"][pending_offset : pending_offset + n_pending].tolist()
            )
            pending_offset += n_pending
            version, reflected, queries = arrays["resident_meta"][i].tolist()
            residents.append(
                ResidentSource(
                    state=state,
                    version=version,
                    updates_reflected=reflected,
                    pending_seeds=seeds,
                    queries=queries,
                )
            )
        return ShardCheckpoint(
            path=path,
            version=int(arrays["graph_version"]),
            updates_ingested=int(arrays["updates_ingested"]),
            batches_ingested=int(arrays["batches_ingested"]),
            config=config,
            serve=serve,
            fingerprint=fingerprint,
            graph=graph,
            residents=residents,
        )
    except StoreError:
        raise
    except Exception as exc:  # missing keys, shape mismatches, bad enums
        raise StoreError(f"corrupt checkpoint {path.name}: {exc}") from exc


def latest_shard_checkpoint(
    directory: PathLike, partitioner: Partitioner | None = None
) -> ShardCheckpoint | None:
    """The newest per-shard checkpoint that loads and validates, or None.

    Damaged newer candidates are skipped, same policy as
    :func:`repro.store.checkpoint.latest_checkpoint`.
    """
    candidates = list_checkpoints(directory)
    errors: list[str] = []
    for path in reversed(candidates):
        try:
            return read_shard_checkpoint(path, partitioner)
        except StoreError as exc:
            errors.append(str(exc))
    if errors:
        raise StoreError(
            "no readable checkpoint; all candidates damaged: " + "; ".join(errors)
        )
    return None


def restore_shard_service(checkpoint: ShardCheckpoint) -> ShardService:
    """Materialize a :class:`ShardService` from one decoded checkpoint."""
    return ShardService.restore(
        graph=checkpoint.graph,
        config=checkpoint.config,
        serve=checkpoint.serve,
        residents=checkpoint.residents,
        hub_index=None,
        graph_version=checkpoint.version,
        updates_ingested=checkpoint.updates_ingested,
        batches_ingested=checkpoint.batches_ingested,
    )


# ---------------------------------------------------------------------- #
# per-shard recovery
# ---------------------------------------------------------------------- #


@dataclass
class ShardRecovery:
    """A recovered shard service plus the forensics of how it got there."""

    service: ShardService
    checkpoint_path: Path
    checkpoint_version: int
    replayed_batches: int
    replayed_updates: int
    torn_bytes_dropped: int
    wall_seconds: float

    def describe(self) -> str:
        return (
            f"shard {self.service.graph.shard_id}: recovered"
            f" v{self.checkpoint_version} -> v{self.service.graph_version}"
            f" ({self.replayed_batches} batches / {self.replayed_updates} updates"
            f" replayed, {self.torn_bytes_dropped} torn bytes dropped,"
            f" {self.wall_seconds * 1e3:.1f} ms)"
        )


def recover_shard(
    root: PathLike,
    *,
    partitioner: Partitioner | None = None,
    store_config: StoreConfig | None = None,
    attach: bool = True,
) -> ShardRecovery:
    """Rebuild one shard's service from its own store directory.

    ``root`` is the *per-shard* store root (``shard_store_root(...)``).
    Newest valid checkpoint, truncate torn WAL tails, replay the tail
    through the normal ingest path — with ``serve.refresh`` pinned to
    ``LAZY`` for the duration of the replay (no coordinator is relaying
    frontier exchanges during recovery; see the module docstring) — then
    reattach a store without writing a redundant baseline checkpoint.
    """
    root = Path(root)
    if not root.exists():
        raise StoreError(f"shard store directory not found: {root}")
    checkpoint = latest_shard_checkpoint(root / "checkpoints", partitioner)
    if checkpoint is None:
        raise StoreError(
            f"no checkpoint under {root} — the shard store never saw an"
            " attach (the WAL alone cannot rebuild the initial slice)"
        )

    start = clock.now()
    service = restore_shard_service(checkpoint)
    restored_serve = service.serve
    service.serve = restored_serve.with_(refresh=RefreshPolicy.LAZY)
    wal = WriteAheadLog(root / "wal")
    torn = wal.truncate_torn_tails()
    replayed_batches = 0
    replayed_updates = 0
    try:
        for record in wal.iter_records(after_seq=checkpoint.version):
            if record.seq != service.graph_version + 1:
                raise StoreError(
                    f"WAL replay gap: checkpoint v{checkpoint.version}, next"
                    f" record seq {record.seq}, shard at"
                    f" v{service.graph_version}"
                )
            service.ingest(list(record.updates))
            replayed_batches += 1
            replayed_updates += len(record.updates)
    finally:
        service.serve = restored_serve
        wal.close()

    if attach:
        store = StateStore(root, store_config or StoreConfig(root=str(root)))
        # The replayed tail is already on disk; count it toward the next
        # checkpoint so the interval is measured from the last checkpoint.
        store._batches_since_checkpoint = replayed_batches
        service.attach_store(store, checkpoint=False)
    wall = clock.now() - start
    return ShardRecovery(
        service=service,
        checkpoint_path=checkpoint.path,
        checkpoint_version=checkpoint.version,
        replayed_batches=replayed_batches,
        replayed_updates=replayed_updates,
        torn_bytes_dropped=torn,
        wall_seconds=wall,
    )
