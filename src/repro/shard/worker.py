"""The shard worker: one process, one vertex slice, one serving engine.

:func:`shard_main` is the entry point of every shard process. It builds
a :class:`~repro.shard.service.ShardService` over this shard's
:class:`~repro.shard.graph.ShardGraph` slice and serves the
coordinator's frames in FIFO order, mirroring the replica worker
(:mod:`repro.cluster.replica`) with the shard-tier differences:

* **every shard applies every write batch** (degrees, presence, and the
  graph version are replicated; only the in-adjacency dicts are
  partitioned), so ``APPLY`` carries the full WAL frame and each shard
  logs it to its *own* store before acknowledging;
* a push that reaches a non-owned vertex makes the worker **block
  inside the push** on an unsolicited ``FETCH`` to the coordinator.
  While blocked it keeps serving incoming ``EXCHANGE`` frames — pure
  reads of its own rows — which is what makes the relayed star topology
  deadlock-free (two shards can fetch from each other simultaneously;
  both serve while blocked);
* ``VALIDATE`` dry-runs a delete-carrying batch against the shard's
  owned multiplicities so the coordinator can reject atomically before
  any shard mutates (see ``docs/sharding.md`` on how this deliberately
  *tightens* the single-process engine's partial-apply semantics).

Any frame the worker receives mid-fetch that it cannot serve inline is
deferred to a pending queue the main loop drains afterward — except
``SHUTDOWN``, which aborts the fetch with :class:`ClusterError` so the
worker can exit promptly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any

import numpy as np

from .. import chaos, obs
from ..api.gateway import Gateway
from ..api.requests import IngestBatch
from ..api.responses import ErrorInfo
from ..chaos import FaultPlan
from ..config import ObsConfig, PPRConfig, ServeConfig, StoreConfig
from ..errors import ClusterError
from ..store.store import StateStore
from ..store.wal import pack_record, unpack_record
from . import messages
from .graph import ShardGraph
from .manifest import recover_shard
from .partitioner import partitioner_from_manifest
from .service import ShardService


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build its shard.

    ``graph_arrays`` (an order-exact full-graph snapshot from
    :meth:`~repro.graph.digraph.DynamicDiGraph.to_arrays`, sliced
    locally by the partitioner), ``graph_shm`` (the same snapshot
    attached from a named shared-memory segment — zero pickling per
    worker) and ``recover`` (rebuild from this shard's own store) are
    mutually exclusive bootstrap modes.
    """

    shard_id: int
    shards: int
    config: PPRConfig
    serve: ServeConfig
    #: ``Partitioner.to_manifest()`` payload — rebuilt identically here.
    partitioner_manifest: dict[str, Any]
    #: Full-graph snapshot to slice, or None when recovering or
    #: attaching shared memory.
    graph_arrays: dict[str, Any] | None
    #: Graph version the ``graph_arrays``/``graph_shm`` snapshot is at.
    graph_version: int
    #: This shard's own store directory (None = no durability).
    store_root: str | None = None
    #: Store knobs; the coordinator inflates ``checkpoint_interval`` so
    #: only coordinated CHECKPOINT rounds write checkpoints.
    store_config: StoreConfig | None = None
    #: Rebuild from ``store_root`` (newest checkpoint + WAL tail).
    recover: bool = False
    #: Shared-memory snapshot descriptor (:mod:`repro.graph.shm`): the
    #: worker attaches the published seed segment and slices it locally
    #: (``ShardConfig.shared_memory``).
    graph_shm: dict[str, Any] | None = None
    obs: ObsConfig = field(default_factory=ObsConfig)
    chaos: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.shard_id < self.shards:
            raise ClusterError(
                f"shard_id {self.shard_id} outside [0, {self.shards})"
            )
        if self.recover:
            if self.store_root is None:
                raise ClusterError("a recovering ShardSpec needs store_root")
        elif self.graph_arrays is None and self.graph_shm is None:
            raise ClusterError(
                "a ShardSpec needs graph_arrays or graph_shm unless"
                " recover=True"
            )
        if self.graph_arrays is not None and self.graph_shm is not None:
            raise ClusterError(
                "graph_arrays and graph_shm are mutually exclusive"
            )
        if self.serve.store is not None:
            raise ClusterError("shard ServeConfig must not carry a store")


def build_shard_service(spec: ShardSpec) -> ShardService:
    """Construct the shard's serving engine per the spec's bootstrap mode."""
    partitioner = partitioner_from_manifest(spec.partitioner_manifest)
    if partitioner.num_shards != spec.shards:
        raise ClusterError(
            f"partitioner manifest is for {partitioner.num_shards} shards,"
            f" spec says {spec.shards}"
        )
    if spec.recover:
        result = recover_shard(
            spec.store_root,
            partitioner=partitioner,
            store_config=spec.store_config,
        )
        return result.service
    if spec.graph_shm is not None:
        from ..graph.shm import SharedArrayBundle

        # Attach, slice, detach: from_full_arrays copies everything it
        # keeps, so the mapping can be dropped as soon as the slice is
        # built — a shard holds only its own rows, never the full dump.
        bundle = SharedArrayBundle.attach(spec.graph_shm)
        try:
            graph = ShardGraph.from_full_arrays(
                bundle.arrays(), partitioner, spec.shard_id
            )
        finally:
            bundle.close()
    else:
        graph = ShardGraph.from_full_arrays(
            spec.graph_arrays, partitioner, spec.shard_id
        )
    store = None
    if spec.store_root is not None:
        store = StateStore(spec.store_root, spec.store_config)
    service = ShardService(graph, spec.config, spec.serve, store=store)
    service.graph_version = spec.graph_version
    return service


def shard_main(spec: ShardSpec, conn: Connection) -> None:
    """Worker-process loop: build the shard, then serve frames forever.

    Exits on ``SHUTDOWN`` (acknowledged with ``BYE``), a closed pipe
    (coordinator died), or an unhandled error (the coordinator sees the
    broken pipe and respawns from this shard's store). Engine-level
    failures inside a read do not crash the worker — the shard's own
    gateway maps them to typed error responses.
    """
    if spec.obs.enabled:
        # Outbox mode: finished spans accumulate locally and ride the
        # reply frames; only the coordinator owns the export sink.
        obs.configure(spec.obs.with_(export_path=None), outbox=True)
    # Fresh install (not fork inheritance): visit counters start at zero,
    # and replica=-scoped faults match this shard's index.
    chaos.install(spec.chaos, replica=spec.shard_id)
    service = build_shard_service(spec)
    gateway = Gateway(service)
    graph: ShardGraph = service.graph
    #: Frames that arrived mid-fetch and must be served by the main loop.
    pending: deque[tuple] = deque()
    fetch_ticket = 0

    def serve_exchange(frame: tuple) -> None:
        """Answer one peer row-fetch (pure read of owned in-rows)."""
        _, ticket, requester, frame_bytes = frame
        _, ids, _weights = messages.unpack_frontier(frame_bytes)
        rows = [graph.in_row(int(v)) for v in ids.tolist()]
        reply = messages.pack_rows(service.graph_version, ids, rows)
        conn.send((messages.EXCHANGED, ticket, requester, reply))

    def fetch(owner: int, ids: np.ndarray, masses: np.ndarray) -> dict[int, np.ndarray]:
        """Block the running push on one remote row fetch.

        Emits ``FETCH`` and drains the pipe until the matching
        ``FETCHED`` arrives, serving ``EXCHANGE`` frames inline (pure
        reads — this is the deadlock-free half of the protocol) and
        deferring everything else to the main loop.
        """
        nonlocal fetch_ticket
        fetch_ticket += 1
        ticket = fetch_ticket
        request = messages.pack_frontier(service.graph_version, ids, masses)
        try:
            conn.send((messages.FETCH, ticket, owner, request))
            while True:
                frame = conn.recv()
                tag = frame[0]
                if tag == messages.EXCHANGE:
                    serve_exchange(frame)
                elif tag == messages.FETCHED:
                    if frame[1] != ticket:
                        continue  # stale answer to an abandoned fetch
                    reply = frame[2]
                    if reply is None:
                        raise ClusterError(
                            f"shard {spec.shard_id}: fetch of"
                            f" {len(ids)} rows from shard {owner} failed"
                            " (peer dead or frame dropped)"
                        )
                    version, rows = messages.unpack_rows(reply)
                    if version != service.graph_version:
                        raise ClusterError(
                            f"shard {spec.shard_id}: fetched rows at"
                            f" v{version}, shard is at"
                            f" v{service.graph_version}"
                        )
                    return rows
                elif tag == messages.SHUTDOWN:
                    pending.append(frame)
                    raise ClusterError(
                        f"shard {spec.shard_id}: shutdown during fetch"
                    )
                else:
                    pending.append(frame)
        except (EOFError, OSError) as exc:
            raise ClusterError(
                f"shard {spec.shard_id}: exchange channel closed mid-fetch"
            ) from exc

    service.view.bind_fetch(fetch)

    try:
        conn.send((messages.HELLO, service.graph_version))
        while True:
            if pending:
                frame = pending.popleft()
            else:
                try:
                    frame = conn.recv()
                except (EOFError, OSError):
                    break
            tag = frame[0]
            if tag == messages.APPLY:
                _, ticket, frame_bytes, ctx = frame
                with obs.activate(ctx):
                    record = unpack_record(frame_bytes)
                    if record.seq <= service.graph_version:
                        # Idempotent skip: a respawned shard may be
                        # re-shipped batches its recovery already covered.
                        conn.send(
                            (
                                messages.APPLIED,
                                ticket,
                                service.graph_version,
                                None,
                                obs.drain(),
                            )
                        )
                        continue
                    if record.seq != service.graph_version + 1:
                        raise ClusterError(
                            f"shard {spec.shard_id} replication gap: at"
                            f" v{service.graph_version}, batch frame is"
                            f" v{record.seq}"
                        )
                    with obs.span("shard.apply", shard=spec.shard_id):
                        chaos.check("shard.apply", seq=record.seq)
                        response = gateway.submit(
                            IngestBatch(updates=record.updates)
                        )
                conn.send(
                    (
                        messages.APPLIED,
                        ticket,
                        service.graph_version,
                        response,
                        obs.drain(),
                    )
                )
            elif tag == messages.VALIDATE:
                _, ticket, frame_bytes = frame
                record = unpack_record(frame_bytes)
                verdict = graph.validate_batch(list(record.updates))
                info = None
                if verdict is not None:
                    index, error = verdict
                    info = (index, ErrorInfo.from_exception(error))
                conn.send((messages.VALIDATED, ticket, info))
            elif tag == messages.REQUESTS:
                _, ticket, requests, coalesce = frame
                responses = gateway.submit_many(list(requests), coalesce=coalesce)
                conn.send(
                    (
                        messages.RESPONSES,
                        ticket,
                        responses,
                        service.graph_version,
                        obs.drain(),
                    )
                )
            elif tag == messages.EXCHANGE:
                serve_exchange(frame)
            elif tag == messages.REGISTER:
                _, ticket, ids = frame
                for v in ids:
                    if not graph.has_vertex(v):
                        graph.add_vertex(v)
                conn.send((messages.REGISTERED, ticket, graph.capacity))
            elif tag == messages.CHECKPOINT:
                _, ticket = frame
                path = None
                if service.store is not None:
                    path = str(service.store.checkpoint(service))
                conn.send(
                    (messages.CHECKPOINTED, ticket, service.graph_version, path)
                )
            elif tag == messages.STATUS:
                _, ticket = frame
                payload = {
                    "shard": spec.shard_id,
                    "graph_version": service.graph_version,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "owned_vertices": int(len(graph.owned_vertices())),
                    "owned_edges": graph.owned_edges,
                    "capacity": graph.capacity,
                    "resident": len(service.cache.entries()),
                    "graph_bytes": graph.memory_bytes(),
                    "remote_rows": service.view.remote_rows,
                    "metrics": service.metrics().to_dict(),
                }
                if service.store is not None:
                    payload["checkpoints_written"] = (
                        service.store.checkpoints_written
                    )
                conn.send((messages.STATUSED, ticket, payload))
            elif tag == messages.TAIL:
                _, ticket, after_seq = frame
                frames: list[bytes] = []
                if service.store is not None:
                    for record in service.store.wal.iter_records(
                        after_seq=after_seq
                    ):
                        frames.append(
                            pack_record(
                                record.seq, record.updates, epoch=record.epoch
                            )
                        )
                conn.send((messages.TAILED, ticket, frames))
            elif tag == messages.FETCHED:
                continue  # stale answer to an abandoned fetch
            elif tag == messages.SHUTDOWN:
                conn.send((messages.BYE, service.graph_version))
                break
            else:  # pragma: no cover - protocol bug guard
                raise ClusterError(f"unknown frame tag: {tag!r}")
    finally:
        conn.close()
