"""The serving engine one shard process runs (:class:`ShardService`).

A :class:`ShardService` *is* a :class:`~repro.serve.service.PPRService` —
same ingest loop, same admission pool, same lazy-refresh discipline,
same certified top-k — with the single-process assumptions swapped out:

* the graph is a :class:`~repro.shard.graph.ShardGraph` slice instead of
  the full :class:`~repro.graph.digraph.DynamicDiGraph`;
* the versioned CSR snapshot machinery is replaced by one **live**
  :class:`~repro.shard.graph.ShardCSRView` — always at the current
  version, never rebuilt, resolving non-owned in-rows over the frontier
  exchange. This is sound because the coordinating gateway serializes
  every push against every mutation (one lock, single-threaded workers);
* sources are served only by their owner shard, so the resident cache
  naturally holds a partition of the source space — the same property
  the cluster tier gets from hashed placement, here for writes too.

The hub tier is unsupported (a hub vector is global state with no owner;
``ServeConfig.num_hubs`` must be 0), and the backend must be ``NUMPY`` —
the pure engine walks ``in_neighbors`` directly, which a shard cannot
answer for rows it does not own.

A push that loses its exchange channel mid-flight (peer died beyond its
respawn budget, version skew) raises :class:`~repro.errors.ClusterError`;
the refresh wrapper here *evicts* the resident entry first, because its
state arrays may have absorbed a partial iteration — the next query
re-admits the source from scratch instead of serving from a corrupted
vector. See ``docs/sharding.md``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..config import Backend, PPRConfig, ServeConfig
from ..core.stats import PushStats
from ..errors import ClusterError, ConfigError
from ..graph.csr import CSRGraph
from ..graph.update import EdgeUpdate
from ..serve.cache import ResidentSource
from ..serve.service import PPRService
from .graph import ShardCSRView, ShardGraph


class ShardService(PPRService):
    """One shard's serving engine: a ``PPRService`` over a graph slice.

    Parameters
    ----------
    graph:
        This shard's :class:`~repro.shard.graph.ShardGraph` slice.
    config / serve:
        As for :class:`~repro.serve.service.PPRService`, with two
        restrictions: ``config.backend`` must be ``NUMPY`` and the hub
        tier must be disabled. ``serve.store`` must stay ``None`` —
        per-shard stores are attached explicitly by the shard worker so
        each shard gets its *own* root directory.
    store:
        An explicit per-shard :class:`repro.store.StateStore` to attach.
    """

    def __init__(
        self,
        graph: ShardGraph,
        config: PPRConfig | None = None,
        serve: ServeConfig | None = None,
        *,
        hubs: Sequence[int] | None = None,
        store=None,
    ) -> None:
        if not isinstance(graph, ShardGraph):
            raise ConfigError(
                f"ShardService requires a ShardGraph, got {type(graph).__name__}"
            )
        config = config or PPRConfig(backend=Backend.NUMPY)
        if config.backend is not Backend.NUMPY:
            raise ConfigError(
                "the sharded tier requires Backend.NUMPY: the pure engine"
                " walks in-neighbors directly, which a shard cannot answer"
                f" for non-owned rows (got {config.backend.value})"
            )
        serve = serve or ServeConfig()
        if hubs is not None or serve.num_hubs > 0:
            raise ConfigError(
                "the sharded tier does not support the hub tier: a hub"
                " vector is global state with no owning shard"
                " (set ServeConfig.num_hubs=0)"
            )
        if serve.store is not None:
            raise ConfigError(
                "per-shard stores are attached by the shard worker"
                " (ShardedGateway store_root), not via ServeConfig.store"
            )
        #: The live distributed view every push on this shard consumes.
        self.view = ShardCSRView(graph)
        super().__init__(graph, config, serve, store=store)

    # ------------------------------------------------------------------ #
    # snapshot machinery: one live view, no rebuilds
    # ------------------------------------------------------------------ #

    def _snapshot(self) -> ShardCSRView:
        return self.view

    def _advance_snapshot(self, updates: Sequence[EdgeUpdate]) -> bool:
        # The live view covers the new version by construction.
        return True

    def set_snapshot(self, csr: CSRGraph) -> None:
        raise ConfigError(
            "a sharded engine derives its view from the live shard graph;"
            " externally-built snapshots are not supported"
        )

    @property
    def snapshot_version(self) -> int:
        """The live view is always at the current graph version."""
        return self.graph_version

    # ------------------------------------------------------------------ #
    # ingest / refresh
    # ------------------------------------------------------------------ #

    def _execute_ingest(
        self,
        updates: Sequence[EdgeUpdate],
        *,
        snapshot: CSRGraph | None = None,
    ) -> dict[int, PushStats]:
        if snapshot is not None:
            raise ConfigError(
                "a sharded engine cannot install an external ingest snapshot"
            )
        # Cached remote rows describe the pre-batch graph; drop them
        # before any mutation so post-batch pushes re-fetch at the new
        # version (the exchange protocol version-checks every frame).
        self.view.clear_remote()
        return super()._execute_ingest(updates)

    def _refresh(self, entry: ResidentSource) -> PushStats:
        try:
            return super()._refresh(entry)
        except ClusterError:
            # The push may have absorbed a partial iteration before the
            # exchange failed; the state vector is not trustworthy. Evict
            # so the next query re-admits from scratch.
            self.cache.evict(entry.source)
            raise
