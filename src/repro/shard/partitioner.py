"""Vertex placement: which shard owns which vertex.

The whole sharded tier hangs off one total function ``owner(v) -> shard``:
it decides where a vertex's in-adjacency row lives, which shard drives a
source's push, and where an ingest batch's per-vertex work lands. The
contract every implementation must honor (property-tested in
``tests/test_shard_properties.py``):

* **deterministic and total** — any ``v >= 0`` maps to exactly one shard
  in ``[0, num_shards)``, the same one on every call in every process;
* **repartition-free** — the mapping never changes as the graph grows
  (a moved vertex would invalidate every shard's WAL history);
* **reasonably balanced** — the default hash splits even adversarial
  (Zipf-distributed) id sets to within a few percent of even.

``HashPartitioner`` is stateless splitmix64; ``DegreePartitioner`` adds a
static greedy table built from a seed graph's in-degrees (the frontier
exchange fetches in-rows, so in-degree mass is what loads a shard), with
the hash rule as the fallback for ids unseen at build time. Both
round-trip through the recovery manifest (:mod:`repro.shard.manifest`)
so a cold-started gateway routes identically to the one that wrote the
checkpoints.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import PartitionerKind, ShardConfig
from ..errors import ConfigError
from ..graph.digraph import DynamicDiGraph

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(v: int) -> int:
    """The splitmix64 finalizer over one 64-bit value (pure Python ints)."""
    z = (v + _GOLDEN) & _M64
    z = ((z ^ (z >> 30)) * _MIX1) & _M64
    z = ((z ^ (z >> 27)) * _MIX2) & _M64
    return (z ^ (z >> 31)) & _M64


def _splitmix64_array(ids: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix64`, bit-identical to the scalar form."""
    with np.errstate(over="ignore"):
        z = ids.astype(np.uint64) + np.uint64(_GOLDEN)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
        return z ^ (z >> np.uint64(31))


class Partitioner:
    """Base class: a total, deterministic vertex -> shard mapping."""

    kind: PartitionerKind

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def owner(self, v: int) -> int:
        """Owning shard of vertex ``v`` (scalar)."""
        raise NotImplementedError

    def owners(self, ids: np.ndarray) -> np.ndarray:
        """Owning shards of an id array (vectorized :meth:`owner`)."""
        raise NotImplementedError

    def to_manifest(self) -> dict[str, Any]:
        """JSON-safe description that :func:`partitioner_from_manifest`
        rebuilds bit-identically (rides the recovery manifest)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shards={self.num_shards})"


class HashPartitioner(Partitioner):
    """Stateless splitmix64 placement: ``owner(v) = mix(v) % shards``."""

    kind = PartitionerKind.HASH

    def owner(self, v: int) -> int:
        return int(_splitmix64(v) % self.num_shards)

    def owners(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        return (_splitmix64_array(ids) % np.uint64(self.num_shards)).astype(np.int64)

    def to_manifest(self) -> dict[str, Any]:
        return {"kind": self.kind.value, "shards": self.num_shards}


class DegreePartitioner(Partitioner):
    """Static degree-aware greedy placement over a seed graph.

    Vertices of the seed graph are assigned heaviest-in-degree first,
    each to the currently least-loaded shard (load = assigned in-degree
    mass) — the classic greedy balance heuristic. Ids outside the table
    fall back to the hash rule, so the mapping stays total and
    repartition-free as the graph grows past the seed.
    """

    kind = PartitionerKind.DEGREE

    def __init__(self, num_shards: int, table: dict[int, int]) -> None:
        super().__init__(num_shards)
        for v, shard in table.items():
            if not 0 <= shard < num_shards:
                raise ConfigError(
                    f"degree table maps {v} to shard {shard},"
                    f" outside [0, {num_shards})"
                )
        self._table = dict(table)
        self._fallback = HashPartitioner(num_shards)

    @classmethod
    def from_graph(cls, graph: DynamicDiGraph, num_shards: int) -> "DegreePartitioner":
        """Build the greedy table from ``graph``'s current in-degrees."""
        weighted = sorted(
            ((graph.in_degree(v), v) for v in graph.vertices()),
            key=lambda pair: (-pair[0], pair[1]),
        )
        loads = [0] * num_shards
        table: dict[int, int] = {}
        for degree, v in weighted:
            shard = loads.index(min(loads))
            table[v] = shard
            # Weight isolated vertices as 1 so they still spread out.
            loads[shard] += max(degree, 1)
        return cls(num_shards, table)

    @property
    def table(self) -> dict[int, int]:
        return dict(self._table)

    def owner(self, v: int) -> int:
        shard = self._table.get(v)
        if shard is not None:
            return shard
        return self._fallback.owner(v)

    def owners(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        out = self._fallback.owners(ids)
        if self._table:
            for i, v in enumerate(ids.tolist()):
                shard = self._table.get(v)
                if shard is not None:
                    out[i] = shard
        return out

    def to_manifest(self) -> dict[str, Any]:
        items = sorted(self._table.items())
        return {
            "kind": self.kind.value,
            "shards": self.num_shards,
            "table_keys": [v for v, _ in items],
            "table_values": [s for _, s in items],
        }


def build_partitioner(
    config: ShardConfig, graph: DynamicDiGraph | None = None
) -> Partitioner:
    """Construct the partitioner a :class:`ShardConfig` asks for.

    ``DEGREE`` needs the seed graph its table is derived from; building
    one without a graph degenerates to an empty table (= pure hash).
    """
    if config.partitioner is PartitionerKind.HASH:
        return HashPartitioner(config.shards)
    if graph is None:
        return DegreePartitioner(config.shards, {})
    return DegreePartitioner.from_graph(graph, config.shards)


def partitioner_from_manifest(payload: dict[str, Any]) -> Partitioner:
    """Rebuild a partitioner serialized by :meth:`Partitioner.to_manifest`."""
    try:
        kind = PartitionerKind(payload["kind"])
        shards = int(payload["shards"])
    except (KeyError, ValueError, TypeError):
        raise ConfigError(
            f"malformed partitioner manifest: {payload!r}"
        ) from None
    if kind is PartitionerKind.HASH:
        return HashPartitioner(shards)
    keys = payload.get("table_keys", [])
    values = payload.get("table_values", [])
    if len(keys) != len(values):
        raise ConfigError("degree table keys/values length mismatch")
    return DegreePartitioner(
        shards, {int(v): int(s) for v, s in zip(keys, values)}
    )
