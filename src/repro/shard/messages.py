"""Wire protocol of the sharded serving tier (:mod:`repro.shard`).

Frames travel over :class:`multiprocessing.Pipe` channels between the
coordinating :class:`~repro.shard.gateway.ShardedGateway` and its shard
workers, as plain picklable tuples whose first element is one of the tag
constants below. Anything bulky — write batches, frontier requests,
in-adjacency rows — rides inside the frame as *bytes* produced by the
WAL codec (:func:`repro.store.wal.pack_payload`), so a frame damaged in
transit is rejected by the same CRC check that rejects a torn WAL tail,
and the ``seq`` slot of the framing doubles as the graph version both
sides must agree on.

Coordinator -> shard::

    (APPLY,      ticket, frame_bytes, ctx)        # full write batch (WAL frame)
    (VALIDATE,   ticket, frame_bytes)             # simulate batch, no mutation
    (REQUESTS,   ticket, requests, coalesce)      # typed read requests
    (EXCHANGE,   ticket, requester, frame_bytes)  # serve a peer's row fetch
    (FETCHED,    ticket, frame_bytes | None)      # answer to this shard's FETCH
    (REGISTER,   ticket, ids)                     # register vertex ids (no edges)
    (CHECKPOINT, ticket)                          # write a checkpoint now
    (STATUS,     ticket)                          # report the status payload
    (TAIL,       ticket, after_seq)               # re-frame own WAL tail
    (SHUTDOWN,)                                   # exit the worker loop

Shard -> coordinator::

    (HELLO,        version)                           # spawn handshake
    (APPLIED,      ticket, version, response, spans)  # APPLY outcome (ApiResponse)
    (VALIDATED,    ticket, error_info | None)         # VALIDATE verdict
    (RESPONSES,    ticket, responses, version, spans) # REQUESTS answers
    (FETCH,        ticket, owner, frame_bytes)        # fetch rows from a peer
    (EXCHANGED,    ticket, requester, frame_bytes)    # EXCHANGE answer
    (REGISTERED,   ticket, capacity)                  # REGISTER ack
    (CHECKPOINTED, ticket, version, path | None)      # CHECKPOINT outcome
    (STATUSED,     ticket, payload)                   # STATUS payload
    (TAILED,       ticket, frames)                    # TAIL answer (WAL frames)
    (BYE,          version)                           # orderly exit

``FETCH`` is the one *unsolicited* shard-to-coordinator frame: a shard
mid-push that needs a remote vertex's in-adjacency row emits it and
blocks until the matching ``FETCHED`` arrives, serving any ``EXCHANGE``
frames (pure reads) that reach it in the meantime. The coordinator
relays the request to the owning shard as ``EXCHANGE`` and the owner's
``EXCHANGED`` back as ``FETCHED`` — see ``docs/sharding.md`` for why the
relayed star topology cannot deadlock.

Two payload codecs ride the :func:`pack_payload` framing:

* a **frontier request** (:func:`encode_frontier`) is an ``(n, 2)``
  little-endian int64 array — column 0 the vertex ids whose rows are
  wanted, column 1 the requester's residual mass on each (float64
  bit-cast to int64: informational, carried so traces and future
  mass-aware owners can see what the requester is pushing);
* a **row reply** (:func:`encode_rows`) is a flat int64 array
  ``[n, ids..., lengths..., targets...]`` — the ``n`` requested ids, the
  length of each id's in-row, then the rows concatenated *in request
  order*, each row in the owner's insertion order (the order contract
  that keeps sharded pushes bit-identical to the single-process oracle).
"""

from __future__ import annotations

import numpy as np

from ..errors import StoreError
from ..store.wal import pack_payload, unpack_payload

# Coordinator -> shard.
APPLY = "apply"
VALIDATE = "validate"
REQUESTS = "requests"
EXCHANGE = "exchange"
FETCHED = "fetched"
REGISTER = "register"
CHECKPOINT = "checkpoint"
STATUS = "status"
TAIL = "tail"
SHUTDOWN = "shutdown"

# Shard -> coordinator.
HELLO = "hello"
APPLIED = "applied"
VALIDATED = "validated"
RESPONSES = "responses"
FETCH = "fetch"
EXCHANGED = "exchanged"
REGISTERED = "registered"
CHECKPOINTED = "checkpointed"
STATUSED = "statused"
TAILED = "tailed"
BYE = "bye"


def pack_frontier(version: int, ids: np.ndarray, weights: np.ndarray) -> bytes:
    """Frame one frontier request: remote ids + residual mass at ``version``."""
    ids = np.asarray(ids, dtype="<i8")
    weights = np.asarray(weights, dtype="<f8")
    rows = np.empty((len(ids), 2), dtype="<i8")
    rows[:, 0] = ids
    rows[:, 1] = weights.view("<i8")
    return pack_payload(version, rows.tobytes())


def unpack_frontier(frame: bytes) -> tuple[int, np.ndarray, np.ndarray]:
    """Decode one :func:`pack_frontier` frame -> ``(version, ids, weights)``."""
    version, _, payload = unpack_payload(frame)
    if len(payload) % 16:
        raise StoreError(
            f"malformed frontier payload: {len(payload)} bytes is not (n, 2) int64"
        )
    rows = np.frombuffer(payload, dtype="<i8").reshape(-1, 2)
    return version, rows[:, 0].copy(), rows[:, 1].copy().view("<f8")


def pack_rows(version: int, ids: np.ndarray, rows: list[np.ndarray]) -> bytes:
    """Frame one row reply: each requested id's in-row, in request order."""
    ids = np.asarray(ids, dtype="<i8")
    lengths = np.fromiter((len(row) for row in rows), dtype="<i8", count=len(rows))
    flat = (
        np.concatenate(rows).astype("<i8", copy=False)
        if rows
        else np.empty(0, dtype="<i8")
    )
    header = np.empty(1 + 2 * len(ids), dtype="<i8")
    header[0] = len(ids)
    header[1 : 1 + len(ids)] = ids
    header[1 + len(ids) :] = lengths
    return pack_payload(version, header.tobytes() + flat.tobytes())


def unpack_rows(frame: bytes) -> tuple[int, dict[int, np.ndarray]]:
    """Decode one :func:`pack_rows` frame -> ``(version, {id: in_row})``."""
    version, _, payload = unpack_payload(frame)
    data = np.frombuffer(payload, dtype="<i8")
    if data.size < 1:
        raise StoreError("malformed row payload: empty")
    n = int(data[0])
    if n < 0 or data.size < 1 + 2 * n:
        raise StoreError(f"malformed row payload: claims {n} rows, {data.size} words")
    ids = data[1 : 1 + n]
    lengths = data[1 + n : 1 + 2 * n]
    if (lengths < 0).any() or 1 + 2 * n + int(lengths.sum()) != data.size:
        raise StoreError("malformed row payload: row lengths do not cover payload")
    out: dict[int, np.ndarray] = {}
    cursor = 1 + 2 * n
    for v, length in zip(ids.tolist(), lengths.tolist()):
        out[v] = data[cursor : cursor + length].astype(np.int64, copy=True)
        cursor += length
    return version, out
