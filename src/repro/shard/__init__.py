"""repro.shard — partition the graph and PPR state across shard processes.

The sharded tier is the write-scaling counterpart of :mod:`repro.cluster`
(which replicates for read scaling): each shard process owns a vertex
slice of the dynamic graph — its in-adjacency rows, the per-source PPR
states of the sources it owns, and its own WAL + checkpoints — while a
:class:`ShardedGateway` speaks the ordinary typed :class:`~repro.api`
protocol in front, so :class:`~repro.api.client.Client`,
:class:`~repro.net.client.HttpClient`, and ``repro serve`` compose
unchanged. See ``docs/sharding.md`` for the design.
"""

from .gateway import PPRShards, ShardedGateway
from .graph import ShardCSRView, ShardGraph
from .manifest import (
    ShardManifest,
    ShardRecovery,
    read_manifest,
    recover_shard,
    shard_store_root,
    write_manifest,
)
from .partitioner import (
    DegreePartitioner,
    HashPartitioner,
    Partitioner,
    build_partitioner,
    partitioner_from_manifest,
)
from .service import ShardService
from .worker import ShardSpec, build_shard_service, shard_main

__all__ = [
    "DegreePartitioner",
    "HashPartitioner",
    "PPRShards",
    "Partitioner",
    "ShardCSRView",
    "ShardGraph",
    "ShardManifest",
    "ShardRecovery",
    "ShardService",
    "ShardSpec",
    "ShardedGateway",
    "build_partitioner",
    "build_shard_service",
    "partitioner_from_manifest",
    "read_manifest",
    "recover_shard",
    "shard_main",
    "shard_store_root",
    "write_manifest",
]
