"""Open-loop load generation and SLO measurement (``repro load-bench``).

Two halves:

* :mod:`~repro.load.workload` — the traffic model: Zipf tenant
  popularity, read/write and consistency mixes, diurnal modulation,
  burst phases and hot-key storms, expanded into a deterministic
  time-stamped arrival schedule;
* :mod:`~repro.load.harness` — the virtual-time open-loop runner that
  replays a schedule against a gateway, applies the bounded-queue
  admission policy, and reports goodput-under-SLO, latency percentiles
  (p50/p99/p999), and shed/expired counts.

See ``docs/load.md`` for the workload model, SLO definitions, shedding
policy, and the knee-curve methodology.
"""

from .harness import (
    UNBOUNDED,
    LoadReport,
    knee_sweep,
    measure_saturation,
    run_open_loop,
)
from .workload import Arrival, LoadSpec, PhaseSpec, generate_arrivals

__all__ = [
    "Arrival",
    "LoadReport",
    "LoadSpec",
    "PhaseSpec",
    "UNBOUNDED",
    "generate_arrivals",
    "knee_sweep",
    "measure_saturation",
    "run_open_loop",
]
