"""Open-loop multi-tenant workload model: who asks what, when.

A :class:`LoadSpec` describes traffic the way a capacity planner would —
a target arrival rate, a heavy-tailed (Zipf) source popularity over a
tenant population, a read/write mix, a FRESH/BOUNDED/ANY consistency
mix, optional diurnal rate modulation, and burst phases (rate spikes
and/or hot-key storms that pin a fraction of traffic to a handful of
sources). :func:`generate_arrivals` expands it into a deterministic,
time-stamped request schedule: **open loop**, meaning arrival times are
fixed in advance and never wait for completions — exactly the regime
where an overloaded server builds unbounded backlog unless it sheds
(see ``docs/load.md``).

Everything is driven by one seeded generator, so the same spec always
produces the same trace — the property the CI smoke step regression-tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api.requests import (
    ANY,
    FRESH,
    ApiRequest,
    Consistency,
    IngestBatch,
    TopKQuery,
)
from ..errors import ConfigError
from ..graph.update import EdgeOp, EdgeUpdate
from ..utils.rng import ensure_rng


@dataclass(frozen=True)
class PhaseSpec:
    """One traffic phase: a rate spike and/or hot-key storm over a span.

    While ``start_s <= t < end_s`` the instantaneous arrival rate is
    multiplied by ``rate_multiplier``, and (with ``hot_fraction > 0``) a
    ``hot_fraction`` share of read traffic is pinned uniformly to
    ``hot_keys`` instead of the Zipf tail — the celebrity-post shape.
    """

    start_s: float
    end_s: float
    rate_multiplier: float = 1.0
    hot_keys: tuple[int, ...] = ()
    hot_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.start_s < self.end_s:
            raise ConfigError(
                f"phase span must satisfy 0 <= start < end,"
                f" got [{self.start_s}, {self.end_s})"
            )
        if self.rate_multiplier <= 0:
            raise ConfigError(
                f"rate_multiplier must be > 0, got {self.rate_multiplier}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}"
            )
        if self.hot_fraction > 0 and not self.hot_keys:
            raise ConfigError("hot_fraction > 0 requires hot_keys")
        object.__setattr__(self, "hot_keys", tuple(int(k) for k in self.hot_keys))

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop traffic description (see module docstring)."""

    #: Mean arrivals per second at multiplier 1 (the dial the knee sweeps).
    arrival_rate: float = 100.0
    duration_s: float = 10.0
    #: Tenant population: reads draw sources from ``[0, num_sources)``.
    num_sources: int = 64
    #: Zipf popularity exponent (``rank ** -zipf``); heavier tail when larger.
    zipf: float = 1.5
    #: Fraction of arrivals that are reads; the rest are ingest writes.
    read_fraction: float = 0.95
    #: Relative weights of FRESH / BOUNDED / ANY among reads.
    consistency_mix: tuple[float, float, float] = (0.2, 0.3, 0.5)
    #: Version bound used by the BOUNDED share.
    bounded_staleness: int = 4
    #: Sinusoidal day-cycle amplitude in [0, 1): rate swings by ±amplitude
    #: over one full cycle spanning the run.
    diurnal_amplitude: float = 0.0
    #: Burst / hot-key-storm phases layered on top of the base rate.
    phases: tuple[PhaseSpec, ...] = ()
    k: int = 8
    #: Edge updates per ingest write.
    write_batch: int = 4
    #: Per-request latency budget (and default SLO); None = no deadline.
    timeout_ms: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.duration_s <= 0:
            raise ConfigError(f"duration_s must be > 0, got {self.duration_s}")
        if self.num_sources < 1:
            raise ConfigError(f"num_sources must be >= 1, got {self.num_sources}")
        if self.zipf <= 0:
            raise ConfigError(f"zipf must be > 0, got {self.zipf}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if len(self.consistency_mix) != 3 or any(
            w < 0 for w in self.consistency_mix
        ) or sum(self.consistency_mix) <= 0:
            raise ConfigError(
                "consistency_mix must be three non-negative weights"
                f" with a positive sum, got {self.consistency_mix!r}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.write_batch < 1:
            raise ConfigError(f"write_batch must be >= 1, got {self.write_batch}")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigError(f"timeout_ms must be > 0, got {self.timeout_ms}")
        object.__setattr__(self, "phases", tuple(self.phases))

    def with_(self, **changes) -> "LoadSpec":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at ``t``: base x diurnal x phases."""
        rate = self.arrival_rate
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * float(
                np.sin(2.0 * np.pi * t / self.duration_s)
            )
        for phase in self.phases:
            if phase.active(t):
                rate *= phase.rate_multiplier
        return rate

    @property
    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` (the thinning envelope)."""
        rate = self.arrival_rate * (1.0 + self.diurnal_amplitude)
        worst = 1.0
        for phase in self.phases:
            worst = max(worst, phase.rate_multiplier)
        return rate * worst


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when it arrives and what it asks."""

    time_s: float
    request: ApiRequest

    @property
    def is_write(self) -> bool:
        return self.request.is_write


def _source_weights(spec: LoadSpec) -> np.ndarray:
    """Zipf popularity over the tenant population (rank ** -zipf)."""
    weights = np.arange(1, spec.num_sources + 1, dtype=np.float64) ** -spec.zipf
    return weights / weights.sum()


def generate_arrivals(spec: LoadSpec) -> list[Arrival]:
    """Expand one spec into its deterministic open-loop arrival schedule.

    Arrival instants come from a non-homogeneous Poisson process via
    thinning (Lewis & Shedler): candidates at the peak-rate envelope,
    each kept with probability ``rate_at(t) / peak_rate``. Request
    contents (source, consistency, read/write, update edges) draw from
    the same seeded generator, so the whole trace — times and payloads —
    is a pure function of the spec.
    """
    rng = ensure_rng(spec.seed)
    weights = _source_weights(spec)
    population = np.arange(spec.num_sources, dtype=np.int64)
    bounded = Consistency.bounded(spec.bounded_staleness)
    levels = (FRESH, bounded, ANY)
    mix = np.asarray(spec.consistency_mix, dtype=np.float64)
    mix = mix / mix.sum()

    arrivals: list[Arrival] = []
    peak = spec.peak_rate
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= spec.duration_s:
            break
        if float(rng.random()) > spec.rate_at(t) / peak:
            continue  # thinned: instantaneous rate is below the envelope
        if float(rng.random()) < spec.read_fraction:
            storm = next(
                (p for p in spec.phases if p.active(t) and p.hot_fraction > 0),
                None,
            )
            if storm is not None and float(rng.random()) < storm.hot_fraction:
                source = int(storm.hot_keys[rng.integers(len(storm.hot_keys))])
            else:
                source = int(rng.choice(population, p=weights))
            consistency = levels[int(rng.choice(3, p=mix))]
            request: ApiRequest = TopKQuery(
                source=source, k=spec.k, consistency=consistency
            )
        else:
            pairs = rng.integers(
                0, spec.num_sources, size=(spec.write_batch, 2), dtype=np.int64
            )
            request = IngestBatch(
                updates=tuple(
                    EdgeUpdate(int(u), int(v), EdgeOp.INSERT) for u, v in pairs
                )
            )
        arrivals.append(Arrival(time_s=t, request=request))
    return arrivals
