"""Virtual-time open-loop load harness with SLO accounting.

Drives a gateway (``Gateway``, ``ClusterGateway``, or an
:class:`~repro.api.http.HttpClient`-shaped ``submit`` callable) with the
deterministic arrival schedule of a :class:`~repro.load.workload.LoadSpec`
and reports what the ROADMAP's million-user regime actually needs:
p50/p99/p999 latency, **goodput under SLO** (completions within the
budget), and shed/expired counts per priority class.

The trick that makes past-saturation measurement tractable is *virtual
time*: the harness replays the arrival schedule against a simulated
single-server queue whose service times are **measured** — each
dispatched request really executes on the engine and its wall time
becomes the simulated service time. Latency is then queueing wait (from
the simulated clock) plus measured service time. An hour of simulated
overload costs only the sum of real service times, arrival pacing burns
no wall-clock sleep, and the same harness runs fully simulated (an
injected ``service_time`` function) for deterministic unit tests.

Admission control is the same policy the live gateways enforce
(:mod:`repro.api.admission`): a bounded queue shedding ANY-consistency
reads first. Run with ``queue_capacity=None`` to watch the unprotected
alternative collapse — the knee curve in ``benchmarks/results/load.txt``
shows both arms.
"""

from __future__ import annotations

from ..obs import clock
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Any, Callable, Sequence

import numpy as np

from ..api.admission import AdmissionQueue, Priority, priority_of
from ..api.requests import ApiRequest, Deadline
from ..api.responses import ApiResponse
from ..utils.tables import format_table
from .workload import Arrival, LoadSpec, generate_arrivals

#: Effectively-unbounded queue for the no-admission (collapse) arm.
UNBOUNDED = 1 << 30


@dataclass
class LoadReport:
    """Outcome of one open-loop run at one arrival rate."""

    arrival_rate: float
    duration_s: float
    slo_ms: float
    queue_capacity: int | None
    offered: int = 0
    #: Offered per priority class (lowercase names) — shed-rate denominator.
    offered_by_class: dict[str, int] = field(default_factory=dict)
    #: Shed at admission, per priority class (lowercase names).
    shed: dict[str, int] = field(default_factory=dict)
    #: Deadline-expired while queued, per priority class.
    expired: dict[str, int] = field(default_factory=dict)
    served: int = 0
    completed: int = 0
    good: int = 0
    late: int = 0
    failed: int = 0
    #: Failures the serving path itself produced under pressure.
    shed_downstream: int = 0
    deadline_failures: int = 0
    #: Virtual instant the last completion finished (backlog indicator).
    makespan_s: float = 0.0
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def shed_rate(self, priority: str) -> float:
        """Fraction of this class's offered traffic shed at admission."""
        offered = self.offered_by_class.get(priority, 0)
        return self.shed.get(priority, 0) / offered if offered else 0.0

    @property
    def expired_total(self) -> int:
        return sum(self.expired.values())

    @property
    def accepted(self) -> int:
        return self.offered - self.shed_total

    @property
    def goodput_rps(self) -> float:
        """Completions within SLO per second of offered-traffic window."""
        return self.good / self.duration_s if self.duration_s else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile completion latency in ms (0 if none)."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99)

    @property
    def p999_ms(self) -> float:
        return self.latency_percentile(99.9)

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrival_rate": self.arrival_rate,
            "duration_s": self.duration_s,
            "slo_ms": self.slo_ms,
            "queue_capacity": self.queue_capacity,
            "offered": self.offered,
            "offered_by_class": dict(self.offered_by_class),
            "accepted": self.accepted,
            "served": self.served,
            "completed": self.completed,
            "good": self.good,
            "late": self.late,
            "failed": self.failed,
            "shed": dict(self.shed),
            "expired": dict(self.expired),
            "shed_downstream": self.shed_downstream,
            "deadline_failures": self.deadline_failures,
            "goodput_rps": self.goodput_rps,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "makespan_s": self.makespan_s,
        }

    def table(self) -> str:
        capacity = (
            "unbounded" if self.queue_capacity is None else str(self.queue_capacity)
        )
        rows = [
            ["offered", f"{self.offered} requests"
                        f" at {self.arrival_rate:,.0f}/s open loop"],
            ["admission queue", capacity],
            ["completed", f"{self.completed} ({self.good} within"
                          f" {self.slo_ms:,.0f} ms SLO, {self.late} late)"],
            ["shed at admission", f"{self.shed_total} {dict(self.shed)}"],
            ["expired in queue", f"{self.expired_total}"],
            ["failed downstream", f"{self.failed} ({self.shed_downstream} shed,"
                                  f" {self.deadline_failures} deadline)"],
            ["goodput", f"{self.goodput_rps:,.1f}/s within SLO"],
            ["latency", f"p50={self.p50_ms:,.1f} p99={self.p99_ms:,.1f}"
                        f" p999={self.p999_ms:,.1f} ms"],
            ["makespan", f"{self.makespan_s:,.1f} s virtual"],
        ]
        return format_table(["metric", "value"], rows, title="Open-loop load run")


def run_open_loop(
    submit: Callable[[ApiRequest], ApiResponse],
    spec: LoadSpec,
    *,
    slo_ms: float,
    queue_capacity: int | None = None,
    service_time: Callable[[ApiRequest], float] | None = None,
    attach_deadlines: bool = False,
    arrivals: Sequence[Arrival] | None = None,
) -> LoadReport:
    """Replay one spec's schedule through a simulated single-server queue.

    Parameters
    ----------
    submit:
        The gateway front door. Called once per dispatched request; its
        measured wall time is the simulated service time. Ignored when
        ``service_time`` is given.
    slo_ms:
        Latency budget a completion must meet to count as *goodput*.
    queue_capacity:
        Bounded admission queue size (the live shedding policy), or
        ``None`` for the unprotected arm: an unbounded *plain FIFO*
        queue — no priorities, no shedding — the default failure mode
        admission control exists to prevent.
    service_time:
        Simulation mode: a function giving each request's service
        seconds; no engine is touched and every dispatch "succeeds".
    attach_deadlines:
        Attach a real wall-clock :class:`~repro.api.requests.Deadline`
        (``spec.timeout_ms``) to each dispatched request so the
        *gateway's* deadline enforcement is exercised — used by the
        fault-injection tests, where a wedged replica must surface
        ``DEADLINE`` failures instead of hanging the run.
    arrivals:
        Pre-generated schedule override (defaults to
        :func:`~repro.load.workload.generate_arrivals` on ``spec``).
    """
    if arrivals is None:
        arrivals = generate_arrivals(spec)
    queue = AdmissionQueue(UNBOUNDED if queue_capacity is None else queue_capacity)
    report = LoadReport(
        arrival_rate=spec.arrival_rate,
        duration_s=spec.duration_s,
        slo_ms=slo_ms,
        queue_capacity=queue_capacity,
    )
    budget_s = spec.timeout_ms / 1e3 if spec.timeout_ms is not None else None
    server_free = 0.0

    def serve_one(ticket) -> None:
        nonlocal server_free
        arrival: Arrival = ticket.item
        start = max(server_free, arrival.time_s)
        request = arrival.request
        if service_time is not None:
            seconds = float(service_time(request))
            response: ApiResponse | None = None
        else:
            if attach_deadlines and spec.timeout_ms is not None:
                request = dc_replace(
                    request, deadline=Deadline.after_ms(spec.timeout_ms)
                )
            t0 = clock.now()
            response = submit(request)
            seconds = clock.now() - t0
        server_free = start + seconds
        report.served += 1
        report.makespan_s = server_free
        if response is not None and response.error is not None:
            report.failed += 1
            if response.error.code == "OVERLOAD":
                report.shed_downstream += 1
            elif response.error.code == "DEADLINE":
                report.deadline_failures += 1
            return
        latency_ms = (server_free - arrival.time_s) * 1e3
        report.latencies_ms.append(latency_ms)
        report.completed += 1
        if latency_ms <= slo_ms:
            report.good += 1
        else:
            report.late += 1

    for arrival in arrivals:
        # Serve everything the single server finishes before this arrival.
        while queue.depth and server_free < arrival.time_s:
            ticket = queue.poll(now=server_free)
            if ticket is None:
                break
            serve_one(ticket)
        report.offered += 1
        priority = priority_of(arrival.request)
        name = priority.name.lower()
        report.offered_by_class[name] = report.offered_by_class.get(name, 0) + 1
        expires_at = (
            arrival.time_s + budget_s if budget_s is not None else None
        )
        if queue_capacity is None:
            # Unprotected: one flat FIFO class, nothing ever refused.
            priority = Priority.CRITICAL
        queue.offer(arrival, priority, expires_at=expires_at)

    while queue.depth:
        ticket = queue.poll(now=server_free)
        if ticket is None:
            break
        serve_one(ticket)

    report.shed = dict(queue.shed)
    report.expired = dict(queue.expired)
    return report


def measure_saturation(
    submit: Callable[[ApiRequest], ApiResponse],
    spec: LoadSpec,
    *,
    probes: int = 128,
    service_time: Callable[[ApiRequest], float] | None = None,
) -> float:
    """Closed-loop capacity estimate: requests per second back-to-back.

    Runs ``probes`` requests with the spec's mix at zero think time and
    returns ``1 / mean service time`` — the arrival rate at which the
    open-loop queue transitions from stable to divergent (the knee the
    sweep brackets). The calibration trace is generated at a rate that
    yields ~``probes`` *distinct* arrivals (different seed from the
    spec's own runs): cycling a short trace would replay warmed-up,
    already-applied requests and overestimate capacity.
    """
    probe_spec = spec.with_(
        arrival_rate=max(probes / spec.duration_s, spec.arrival_rate),
        seed=spec.seed + 7919,
    )
    arrivals = generate_arrivals(probe_spec)
    if not arrivals:
        raise ValueError("spec generated no arrivals to probe with")
    total = 0.0
    count = 0
    index = 0
    while count < probes:
        request = arrivals[index % len(arrivals)].request
        index += 1
        if service_time is not None:
            total += float(service_time(request))
        else:
            t0 = clock.now()
            submit(request)
            total += clock.now() - t0
        count += 1
    return count / total if total > 0 else float("inf")


def knee_sweep(
    submit: Callable[[ApiRequest], ApiResponse],
    spec: LoadSpec,
    *,
    slo_ms: float,
    queue_capacity: int | None,
    fractions: Sequence[float] = (0.25, 0.5, 1.0, 1.5, 2.0),
    saturation: float | None = None,
    service_time: Callable[[ApiRequest], float] | None = None,
) -> list[LoadReport]:
    """Open-loop runs at ``fractions`` of measured saturation.

    The interesting question is the shape past 1.0: with admission
    control, goodput must *plateau* near capacity; without, it collapses
    because every admitted request queues behind an ever-growing backlog
    and misses its SLO.
    """
    if saturation is None:
        saturation = measure_saturation(
            submit, spec, service_time=service_time
        )
    reports = []
    for fraction in fractions:
        run_spec = spec.with_(
            arrival_rate=max(saturation * fraction, 1e-9),
            seed=spec.seed + int(round(fraction * 1000)),
        )
        reports.append(
            run_open_loop(
                submit,
                run_spec,
                slo_ms=slo_ms,
                queue_capacity=queue_capacity,
                service_time=service_time,
            )
        )
    return reports
