"""Deterministic random-number-generator plumbing.

Every stochastic component of the library (graph generators, streams,
Monte-Carlo walks) accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``; :func:`ensure_rng` normalizes
all three. Benchmarks pass explicit seeds so figures are reproducible.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build an RNG from {rng!r}")


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split one generator into ``count`` independent child generators.

    Used by the multiprocessing backend and the Monte-Carlo baseline so
    that parallel workers draw from non-overlapping streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
