"""ASCII table rendering for benchmark/experiment output.

The benchmark harness prints each figure's data as an aligned table whose
rows mirror the series the paper plots; keeping the renderer here avoids a
dependency on any table library.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
