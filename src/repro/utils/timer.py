"""Tiny wall-clock timer used by the benchmark harness.

Built on :data:`repro.obs.clock.now` — the same monotonic source the
tracer's spans and the per-stage latency histograms read — so a
``Timer`` lap printed by a benchmark is directly comparable to a span
duration in a trace or a ``repro_latency_seconds`` bucket.
"""

from __future__ import annotations

from types import TracebackType

from ..obs import clock


class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     sum(range(10))
    45
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = clock.now()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        lap = clock.now() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap time, 0.0 when no lap has completed."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None
