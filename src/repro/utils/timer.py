"""Tiny wall-clock timer used by the benchmark harness."""

from __future__ import annotations

import time
from types import TracebackType


class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     sum(range(10))
    45
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._start is None:  # pragma: no cover - defensive
            return
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap
        self._start = None

    @property
    def mean(self) -> float:
        """Mean lap time, 0.0 when no lap has completed."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None
