"""Small shared utilities: RNG handling, timers, tables, validation."""

from .rng import ensure_rng, spawn_rngs
from .tables import format_table
from .timer import Timer
from .validation import check_fraction, check_non_negative, check_positive

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "format_table",
    "Timer",
    "check_fraction",
    "check_non_negative",
    "check_positive",
]
