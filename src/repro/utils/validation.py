"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from ..errors import ConfigError


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = False) -> float:
    """Require ``value`` in ``(0, 1)`` (or ``[0, 1]`` when inclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"{name} must be in [0, 1], got {value}")
    elif not 0.0 < value < 1.0:
        raise ConfigError(f"{name} must be in (0, 1), got {value}")
    return value


def check_vertex_id(name: str, value: int) -> int:
    """Require a non-negative integer vertex id."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an int vertex id, got {value!r}")
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return value
