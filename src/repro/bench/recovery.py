"""Recovery benchmark: checkpoint+WAL restart vs from-scratch rebuild.

The experiment behind ``benchmarks/bench_recovery.py`` and the CLI's
``store-*`` commands: run the Fig-5 sliding-window workload through a
persisted :class:`~repro.serve.PPRService` (warm source mix, checkpoints
every ``checkpoint_interval`` batches), then measure two ways of coming
back from a process death at the same graph version:

* **recover** — :func:`repro.store.recovery.recover`: newest checkpoint
  + WAL-tail replay;
* **rebuild** — what a store-less service must do: reconstruct the
  initial graph, re-admit every warm source with from-scratch pushes,
  and re-ingest the *entire* update stream.

Both paths end bit-for-bit at the same answers (asserted); the benchmark
reports how much faster the store path gets there.
"""

from __future__ import annotations

from ..obs import clock
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import Backend, ServeConfig, StoreConfig
from ..errors import ConfigError
from ..serve import PPRService
from ..store.recovery import RecoveryResult, recover
from ..store.store import StateStore
from ..utils.tables import format_table
from .workloads import WorkloadSpec, default_config, prepare_workload


def warm_mix(graph, num_sources: int) -> list[int]:
    """A deterministic warm source mix: the top out-degree vertices."""
    dout = graph.out_degree_array()
    active = np.flatnonzero(dout > 0)
    if len(active) < num_sources:
        raise ConfigError(
            f"graph has only {len(active)} active vertices for {num_sources} sources"
        )
    order = active[np.argsort(dout[active], kind="stable")[::-1]]
    return [int(s) for s in order[:num_sources]]


def persisted_workload_run(
    dataset: str,
    root: Path | str,
    *,
    num_slides: int = 12,
    num_sources: int = 32,
    checkpoint_interval: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
) -> tuple[PPRService, list[int]]:
    """Stream a sliding-window workload through a persisted service.

    Builds the service on the dataset's initial window, warms
    ``num_sources`` top-degree sources, attaches a
    :class:`~repro.store.StateStore` at ``root`` (baseline checkpoint, so
    the warm states are durable), and ingests ``num_slides`` slides.
    Returns the live service and the warm mix.
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    config = default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=workers
    )
    service = PPRService(
        prepared.initial_graph(),
        config,
        ServeConfig(cache_capacity=num_sources),
    )
    mix = warm_mix(service.graph, num_sources)
    service.query_many(mix)
    store = StateStore(
        root, StoreConfig(root=str(root), checkpoint_interval=checkpoint_interval)
    )
    service.attach_store(store)
    window = prepared.new_window()
    for slide in window.slides(num_slides):
        service.ingest(slide)
    return service, mix


def _rebuild_from_scratch(
    dataset: str,
    *,
    num_slides: int,
    num_sources: int,
    epsilon: float,
    workers: int,
) -> tuple[PPRService, list[int]]:
    """The store-less comparator: redo everything from the raw stream."""
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    config = default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=workers
    )
    service = PPRService(
        prepared.initial_graph(),
        config,
        ServeConfig(cache_capacity=num_sources),
    )
    mix = warm_mix(service.graph, num_sources)
    service.query_many(mix)
    window = prepared.new_window()
    for slide in window.slides(num_slides):
        service.ingest(slide)
    return service, mix


@dataclass
class RecoveryBenchResult:
    """Outcome of one recovery-vs-rebuild comparison."""

    dataset: str
    num_slides: int
    num_sources: int
    checkpoint_interval: int
    recover_seconds: float
    rebuild_seconds: float
    replayed_batches: int
    topk_matched: bool
    recovery: RecoveryResult

    @property
    def speedup(self) -> float:
        """Rebuild wall time over recovery wall time."""
        return (
            self.rebuild_seconds / self.recover_seconds
            if self.recover_seconds
            else float("inf")
        )

    def table(self) -> str:
        rows = [
            [
                "workload",
                f"{self.num_slides} slides, {self.num_sources} warm sources,"
                f" checkpoint every {self.checkpoint_interval}",
            ],
            ["recovery", f"{self.recover_seconds * 1e3:,.1f} ms"
             f" ({self.replayed_batches} batches replayed)"],
            ["from-scratch rebuild", f"{self.rebuild_seconds * 1e3:,.1f} ms"],
            ["speedup", f"{self.speedup:,.1f}x"],
            [
                "top-k recovered vs rebuilt",
                "bit-exact match" if self.topk_matched else "MISMATCH",
            ],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Crash recovery vs rebuild — {self.dataset}",
        )


def recovery_benchmark(
    dataset: str,
    root: Path | str,
    *,
    num_slides: int = 12,
    num_sources: int = 32,
    checkpoint_interval: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    verify_sources: int = 5,
    k: int = 10,
) -> RecoveryBenchResult:
    """Persist a workload run, kill it, and race recovery against rebuild."""
    service, mix = persisted_workload_run(
        dataset,
        root,
        num_slides=num_slides,
        num_sources=num_sources,
        checkpoint_interval=checkpoint_interval,
        epsilon=epsilon,
        workers=workers,
    )
    version = service.graph_version
    service.detach_store().close()
    del service  # the crash

    start = clock.now()
    result = recover(root, attach=False)
    recover_seconds = clock.now() - start
    recovered = result.service
    assert recovered.graph_version == version

    start = clock.now()
    rebuilt, _ = _rebuild_from_scratch(
        dataset,
        num_slides=num_slides,
        num_sources=num_sources,
        epsilon=epsilon,
        workers=workers,
    )
    rebuild_seconds = clock.now() - start

    matched = all(
        recovered.query(s, k).entries == rebuilt.query(s, k).entries
        for s in mix[:verify_sources]
    )
    return RecoveryBenchResult(
        dataset=dataset,
        num_slides=num_slides,
        num_sources=num_sources,
        checkpoint_interval=checkpoint_interval,
        recover_seconds=recover_seconds,
        rebuild_seconds=rebuild_seconds,
        replayed_batches=result.replayed_batches,
        topk_matched=matched,
        recovery=result,
    )
