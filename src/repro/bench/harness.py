"""Approach runners: drive each system over a workload, price the trace.

Each :class:`Approach` corresponds to one line of the paper's Figure 5
legend. ``run_approach`` replays ``num_slides`` window slides through the
chosen system, collects its operation trace per slide, and converts it to
simulated hardware latency with the matching cost model. Real wall-clock
of the Python engines is also recorded (pytest-benchmark times the same
kernels separately).
"""

from __future__ import annotations

import enum
from ..obs import clock
from dataclasses import dataclass, field

import numpy as np

from ..config import Backend, PPRConfig, PushVariant
from ..core.push_sequential import cpu_base_update, cpu_seq_update
from ..core.state import PPRState
from ..core.stats import PushStats
from ..core.tracker import DynamicPPRTracker
from ..baselines.ligra.ppr import LigraDynamicPPR
from ..baselines.montecarlo import IncrementalMonteCarloPPR
from ..errors import ConfigError
from ..parallel.cost_model import (
    CPUCostModel,
    GPUCostModel,
    LigraCostModel,
    MonteCarloCostModel,
)
from .workloads import PreparedWorkload


class Approach(enum.Enum):
    """The systems compared in Section 5 (Figure 5's legend)."""

    CPU_BASE = "cpu-base"
    CPU_SEQ = "cpu-seq"
    CPU_MT = "cpu-mt"
    GPU = "gpu"
    MONTE_CARLO = "monte-carlo"
    LIGRA = "ligra"


@dataclass
class ApproachResult:
    """Per-slide simulated latencies plus derived aggregates."""

    approach: Approach
    workload: str
    slide_latencies: list[float] = field(default_factory=list)
    stream_edges_consumed: int = 0
    wall_time: float = 0.0
    push_stats: PushStats = field(default_factory=PushStats)

    @property
    def total_latency(self) -> float:
        return sum(self.slide_latencies)

    @property
    def mean_latency(self) -> float:
        if not self.slide_latencies:
            return 0.0
        return self.total_latency / len(self.slide_latencies)

    @property
    def throughput(self) -> float:
        """Stream edges consumed per simulated second (Figure 5's axis)."""
        if self.total_latency <= 0:
            return 0.0
        return self.stream_edges_consumed / self.total_latency


#: GPU eager-read scheduling granularity: blocks execute in waves across
#: SMs, so a frontier vertex scheduled in a later wave observes earlier
#: waves' atomic additions. One wave ~ 2048 threads here.
_GPU_WORKERS = 2048


def _tracker_config(
    base: PPRConfig, approach: Approach, variant: PushVariant, workers: int
) -> PPRConfig:
    if approach is Approach.CPU_MT:
        return base.with_(backend=Backend.NUMPY, variant=variant, workers=workers)
    if approach is Approach.GPU:
        return base.with_(backend=Backend.NUMPY, variant=variant, workers=_GPU_WORKERS)
    return base


def run_approach(
    prepared: PreparedWorkload,
    approach: Approach,
    config: PPRConfig,
    *,
    num_slides: int = 3,
    variant: PushVariant = PushVariant.OPT,
    workers: int = 40,
    monte_carlo_walks: int = 6,
) -> ApproachResult:
    """Replay the workload through one approach and price every slide."""
    if num_slides < 1:
        raise ConfigError(f"num_slides must be >= 1, got {num_slides}")
    result = ApproachResult(approach=approach, workload=prepared.describe())
    window = prepared.new_window()
    graph = prepared.initial_graph()
    source = prepared.source
    start_wall = clock.now()

    if approach in (Approach.CPU_BASE, Approach.CPU_SEQ):
        model = CPUCostModel(workers=1)
        state = PPRState.initial(source, graph.capacity)
        from ..core.push_sequential import sequential_local_push

        sequential_local_push(state, graph, config, seeds=[source])
        runner = cpu_base_update if approach is Approach.CPU_BASE else cpu_seq_update
        for slide in window.slides(num_slides):
            batch = runner(state, graph, list(slide.updates), config)
            latency = model.sequential_latency(
                batch.sequential_push, num_updates=len(slide.updates)
            )
            result.slide_latencies.append(latency)
            result.stream_edges_consumed += slide.num_stream_edges

    elif approach in (Approach.CPU_MT, Approach.GPU):
        cfg = _tracker_config(config, approach, variant, workers)
        tracker = DynamicPPRTracker(graph, source, cfg)
        cpu_model = CPUCostModel(workers=workers)
        gpu_model = GPUCostModel()
        for slide in window.slides(num_slides):
            batch = tracker.apply_batch(list(slide.updates))
            if approach is Approach.CPU_MT:
                latency = cpu_model.parallel_latency(
                    batch.push, num_updates=len(slide.updates)
                )
            else:
                latency = gpu_model.parallel_latency(
                    batch.push, num_updates=len(slide.updates)
                )
            result.slide_latencies.append(latency)
            result.stream_edges_consumed += slide.num_stream_edges
            result.push_stats.merge(batch.push)

    elif approach is Approach.LIGRA:
        ligra = LigraDynamicPPR(graph, source, config)
        model = LigraCostModel(cpu=CPUCostModel(workers=workers))
        for slide in window.slides(num_slides):
            batch = ligra.apply_batch(list(slide.updates))
            latency = model.parallel_latency(
                batch.push,
                num_vertices=graph.capacity,
                num_edges=graph.num_edges,
                num_updates=len(slide.updates),
            )
            result.slide_latencies.append(latency)
            result.stream_edges_consumed += slide.num_stream_edges
            result.push_stats.merge(batch.push)

    elif approach is Approach.MONTE_CARLO:
        mc = IncrementalMonteCarloPPR(
            graph,
            source,
            config.alpha,
            walks_per_vertex=monte_carlo_walks,
            rng=prepared.spec.seed,
        )
        model = MonteCarloCostModel(workers=workers)
        for slide in window.slides(num_slides):
            stats = mc.apply_batch(list(slide.updates))
            latency = model.latency(stats.walk_steps, stats.index_ops)
            result.slide_latencies.append(latency)
            result.stream_edges_consumed += slide.num_stream_edges

    else:  # pragma: no cover - exhaustive over the enum
        raise ConfigError(f"unknown approach: {approach!r}")

    result.wall_time = clock.now() - start_wall
    return result


def speedup_table(results: dict[Approach, ApproachResult], base: Approach) -> dict[Approach, float]:
    """Latency speedups of every approach relative to ``base``."""
    baseline = results[base].mean_latency
    out: dict[Approach, float] = {}
    for approach, res in results.items():
        out[approach] = baseline / res.mean_latency if res.mean_latency > 0 else np.inf
    return out
