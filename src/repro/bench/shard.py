"""Shard benchmark: partitioned serving vs the single-process gateway.

The experiment behind ``python -m repro shard-bench`` and
``benchmarks/bench_shard.py``: replay the *same* mixed trace
(sliding-window ingest batches interleaved with heavy-tailed top-k
bursts at FRESH / BOUNDED / ANY consistency) against two
identically-configured deployments — one a single-process
:class:`~repro.api.gateway.Gateway`, the other a
:class:`~repro.shard.gateway.ShardedGateway` over N shard processes.

Unlike the cluster benchmark (which replicates the full graph into
every worker), the point here is **memory**: each shard holds the dense
degree/presence arrays plus only its *owned* slice of the in-adjacency
rows and per-source PPR state, so per-shard resident graph bytes must
drop well below the single-process footprint — the acceptance bar is
<= ~60% of the baseline with 4 shards, measured with the same
:meth:`~repro.shard.graph.ShardGraph.memory_bytes` accounting on both
sides (a 1-shard slice *is* the single-process layout).

Correctness is the other half of the bar: every response pair across
the arms must be **bit-identical** — entries, floats, cold flags,
snapshot versions, staleness — and every BOUNDED/ANY answer must honor
its staleness contract. The ingest-throughput bar (>= 1.5x with 4
shards, refresh fan-out running in parallel across owners) only means
anything with enough cores, so :attr:`ShardBenchResult.cores` is
reported alongside and the bar is waived (but still measured) below 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.gateway import Gateway
from ..api.requests import (
    ANY,
    FRESH,
    ApiRequest,
    BatchQuery,
    Consistency,
    IngestBatch,
    TopKQuery,
)
from ..api.responses import TopKResult
from ..config import ApiConfig, RefreshPolicy, ShardConfig
from ..shard import PPRShards, ShardGraph
from ..shard.partitioner import HashPartitioner
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .cluster import _contract_honored, _pairs_identical, available_cores
from .gateway import workload_service
from .serving import _query_mix
from .workloads import WorkloadSpec, prepare_workload


@dataclass
class ShardBenchResult:
    """Outcome of one sharded-vs-single-process race."""

    dataset: str
    shards: int
    cores: int
    num_sources: int
    num_slides: int
    requests: int
    shard_seconds: float
    single_seconds: float
    shard_ingest_seconds: float
    single_ingest_seconds: float
    #: Per-shard resident graph bytes (dense + owned rows), by shard id.
    per_shard_bytes: tuple[int, ...]
    #: Same accounting over the whole graph as one slice (1 "shard").
    baseline_bytes: int
    #: Every response pair bit-identical across arms.
    matched: bool
    #: Every FRESH/BOUNDED/ANY answer honored its staleness contract.
    bounded_ok: bool
    respawns: int

    @property
    def memory_ratio(self) -> float:
        """Largest shard's resident graph bytes over the baseline's."""
        if not self.baseline_bytes:
            return float("inf")
        return max(self.per_shard_bytes) / self.baseline_bytes

    @property
    def read_speedup(self) -> float:
        return (
            self.single_seconds / self.shard_seconds
            if self.shard_seconds
            else float("inf")
        )

    @property
    def ingest_speedup(self) -> float:
        """Single-process ingest time over sharded ingest time."""
        return (
            self.single_ingest_seconds / self.shard_ingest_seconds
            if self.shard_ingest_seconds
            else float("inf")
        )

    def table(self) -> str:
        per_shard = ", ".join(f"{b / 1e6:.2f}" for b in self.per_shard_bytes)
        rows = [
            [
                "request trace",
                f"{self.requests} reads over {self.num_slides} slides,"
                f" {self.num_sources}-source heavy-tailed mix (FRESH/BOUNDED/ANY)",
            ],
            [
                "deployment",
                f"{self.shards} shard processes on {self.cores} usable cores",
            ],
            ["baseline graph bytes", f"{self.baseline_bytes / 1e6:.2f} MB"],
            ["per-shard graph bytes", f"[{per_shard}] MB"],
            [
                "largest shard / baseline",
                f"{self.memory_ratio:.0%} (bar: <= ~60% at 4 shards)",
            ],
            ["sharded ingest", f"{self.shard_ingest_seconds * 1e3:,.1f} ms"],
            ["single-process ingest", f"{self.single_ingest_seconds * 1e3:,.1f} ms"],
            ["ingest speedup", f"{self.ingest_speedup:,.2f}x"],
            ["sharded reads", f"{self.shard_seconds * 1e3:,.1f} ms"],
            ["single-process reads", f"{self.single_seconds * 1e3:,.1f} ms"],
            ["answers across arms", "bit-identical" if self.matched else "MISMATCH"],
            ["staleness contracts", "honored" if self.bounded_ok else "VIOLATED"],
            ["shard respawns", str(self.respawns)],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Sharded tier vs single-process gateway — {self.dataset}",
        )


def shard_benchmark(
    dataset: str = "youtube",
    *,
    shards: int = 4,
    num_sources: int = 48,
    num_slides: int = 3,
    requests_per_slide: int = 128,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 11,
) -> ShardBenchResult:
    """Race one mixed trace through the sharded tier vs one process.

    Per slide: one :class:`~repro.api.requests.IngestBatch` applied to
    both arms (timed separately — the sharded arm's refresh fan-out is
    the throughput story), then one burst of top-k reads drawn from a
    Zipf-like source mix as consistency blocks — ~60% FRESH, ~30%
    ``BOUNDED(num_slides)``, ~10% ANY — issued through ``submit_many``
    on both arms and compared pairwise for bit-identity.
    """
    single_service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    single = Gateway(single_service, ApiConfig())
    shard_service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rng = ensure_rng(seed)
    mix = _query_mix(single_service.graph.out_degree_array(), num_sources, rng)
    weights = np.arange(1, num_sources + 1, dtype=np.float64) ** -1.5
    weights /= weights.sum()

    seed_arrays = shard_service.graph.to_arrays()
    baseline_bytes = ShardGraph.from_full_arrays(
        seed_arrays, HashPartitioner(1), 0
    ).memory_bytes()

    # EAGER refresh on both arms: ingest bears the resident-refresh
    # fan-out, which is exactly the work hashed ownership parallelizes
    # across shard processes — the ingest-throughput story under test.
    single_service.serve = single_service.serve.with_(
        refresh=RefreshPolicy.EAGER
    )
    fleet = PPRShards(
        shard_service.graph,
        ShardConfig(shards=shards),
        ppr=shard_service.config,
        serve=shard_service.serve.with_(
            store=None, refresh=RefreshPolicy.EAGER
        ),
    )
    try:
        warm = BatchQuery(sources=tuple(int(s) for s in mix), k=k)
        single.submit(warm)
        fleet.gateway.submit(warm)

        bounded = Consistency.bounded(num_slides)
        window = prepared.new_window()
        shard_seconds = 0.0
        single_seconds = 0.0
        shard_ingest_seconds = 0.0
        single_ingest_seconds = 0.0
        requests = 0
        matched = True
        bounded_ok = True
        from ..obs import clock

        for slide in window.slides(num_slides):
            write = IngestBatch(updates=tuple(slide.updates))
            start = clock.now()
            fleet.gateway.submit(write)
            shard_ingest_seconds += clock.now() - start
            start = clock.now()
            single.submit(write)
            single_ingest_seconds += clock.now() - start
            head = single_service.graph_version

            drawn = rng.choice(mix, size=requests_per_slide, p=weights)
            chosen = [int(s) for s in drawn]
            cut_fresh = int(len(chosen) * 0.6)
            cut_bounded = int(len(chosen) * 0.9)
            burst: list[ApiRequest] = [
                TopKQuery(source=s, k=k, consistency=FRESH)
                for s in chosen[:cut_fresh]
            ]
            burst += [
                TopKQuery(source=s, k=k, consistency=bounded)
                for s in chosen[cut_fresh:cut_bounded]
            ]
            burst += [
                TopKQuery(source=s, k=k, consistency=ANY)
                for s in chosen[cut_bounded:]
            ]
            requests += len(burst)

            start = clock.now()
            partitioned = fleet.gateway.submit_many(burst)
            shard_seconds += clock.now() - start

            start = clock.now()
            serial = single.submit_many(burst)
            single_seconds += clock.now() - start

            for request, left, right in zip(burst, partitioned, serial):
                assert isinstance(request, TopKQuery)
                assert isinstance(left, TopKResult)
                assert isinstance(right, TopKResult)
                if not _pairs_identical(left, right):
                    matched = False
                if not _contract_honored(request, left, head):
                    bounded_ok = False

        stats = fleet.api.stats().stats
        per_shard = tuple(
            int(payload.get("graph_bytes", 0))
            for payload in stats["shard"]["per_shard"]
        )
        respawns = fleet.gateway.counters["respawns"]
    finally:
        fleet.close()

    return ShardBenchResult(
        dataset=dataset,
        shards=shards,
        cores=available_cores(),
        num_sources=num_sources,
        num_slides=num_slides,
        requests=requests,
        shard_seconds=shard_seconds,
        single_seconds=single_seconds,
        shard_ingest_seconds=shard_ingest_seconds,
        single_ingest_seconds=single_ingest_seconds,
        per_shard_bytes=per_shard,
        baseline_bytes=baseline_bytes,
        matched=matched,
        bounded_ok=bounded_ok,
        respawns=respawns,
    )
