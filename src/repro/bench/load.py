"""Load benchmark: the goodput knee curve with and without admission control.

The experiment behind ``python -m repro load-bench`` and
``benchmarks/bench_load.py``: measure the gateway's closed-loop
saturation rate, then replay open-loop traffic
(:mod:`repro.load.workload` — Zipf tenants, mixed consistency, diurnal
modulation, a hot-key storm) at fractions of that rate from 0.25x up to
2x through two arms:

* **admission** — the bounded queue from :mod:`repro.api.admission`,
  shedding ANY-consistency reads first and expiring requests whose
  deadline passes while queued;
* **unprotected** — an unbounded queue with no deadlines, the default
  failure mode: every request is accepted, the backlog grows without
  bound past saturation, and completions arrive too late to count.

The acceptance bar is the *shape* past the knee: with admission control,
goodput under SLO must plateau (>= 70% of its peak retained at 2x
saturation) while the unprotected arm collapses; and the shedding must
be priority-ordered — ANY reads pay first, FRESH/write traffic last.

Every dispatched request really executes on the engine (the harness
measures service times and simulates only the queueing, see
:mod:`repro.load.harness`), so the knee reflects actual serving cost,
not a synthetic service-time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..api.gateway import Gateway
from ..api.requests import BatchQuery, Stats
from ..config import ApiConfig
from ..load import LoadReport, LoadSpec, PhaseSpec, knee_sweep, measure_saturation
from ..utils.tables import format_table
from .cluster import available_cores
from .gateway import workload_service

#: Knee-curve sample points as fractions of measured saturation.
DEFAULT_FRACTIONS = (0.25, 0.5, 1.0, 1.5, 2.0)


@dataclass
class LoadBenchResult:
    """Outcome of one admission-vs-unprotected knee sweep."""

    dataset: str
    cores: int
    num_sources: int
    slo_ms: float
    queue_capacity: int
    duration_s: float
    saturation_rps: float
    #: One report per fraction, ascending rate — bounded-queue arm.
    admission: list[LoadReport] = field(default_factory=list)
    #: Same rates, unbounded queue, no deadlines — the collapse arm.
    unprotected: list[LoadReport] = field(default_factory=list)
    #: The live gateway's own admission counters after the sweep.
    gateway_admission: dict[str, Any] = field(default_factory=dict)

    @property
    def peak_goodput(self) -> float:
        """Best goodput-under-SLO the admission arm reaches at any rate."""
        return max((r.goodput_rps for r in self.admission), default=0.0)

    def _at_top_rate(self, reports: list[LoadReport]) -> LoadReport | None:
        return max(reports, key=lambda r: r.arrival_rate, default=None)

    @property
    def goodput_at_2x(self) -> float:
        report = self._at_top_rate(self.admission)
        return report.goodput_rps if report is not None else 0.0

    @property
    def unprotected_at_2x(self) -> float:
        report = self._at_top_rate(self.unprotected)
        return report.goodput_rps if report is not None else 0.0

    @property
    def plateau_ratio(self) -> float:
        """Goodput retained at the top rate relative to the peak.

        The graceful-degradation bar: >= 0.7 means overload costs at most
        30% of peak goodput instead of collapsing toward zero.
        """
        peak = self.peak_goodput
        return self.goodput_at_2x / peak if peak else 0.0

    @property
    def any_shed_first(self) -> bool:
        """Priority order holds at the top rate: ANY pays, FRESH is spared.

        Checked as shed *rates* (shed / offered per class) so the ordering
        is meaningful even though ANY is also the largest traffic share.
        """
        report = self._at_top_rate(self.admission)
        if report is None or report.shed_total == 0:
            return False
        any_rate = report.shed_rate("any")
        bounded_rate = report.shed_rate("bounded")
        critical_rate = report.shed_rate("critical")
        return any_rate > 0 and any_rate >= bounded_rate >= critical_rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "cores": self.cores,
            "num_sources": self.num_sources,
            "slo_ms": self.slo_ms,
            "queue_capacity": self.queue_capacity,
            "duration_s": self.duration_s,
            "saturation_rps": self.saturation_rps,
            "peak_goodput": self.peak_goodput,
            "goodput_at_2x": self.goodput_at_2x,
            "unprotected_at_2x": self.unprotected_at_2x,
            "plateau_ratio": self.plateau_ratio,
            "any_shed_first": self.any_shed_first,
            "admission": [r.to_dict() for r in self.admission],
            "unprotected": [r.to_dict() for r in self.unprotected],
            "gateway_admission": dict(self.gateway_admission),
        }

    def table(self) -> str:
        """The knee curve: one row per rate, both arms side by side."""
        rows = []
        for with_q, without_q in zip(self.admission, self.unprotected):
            fraction = (
                with_q.arrival_rate / self.saturation_rps
                if self.saturation_rps
                else 0.0
            )
            rows.append(
                [
                    f"{fraction:.2f}x",
                    f"{with_q.arrival_rate:,.0f}",
                    f"{with_q.goodput_rps:,.0f}",
                    f"{with_q.p99_ms:,.1f}",
                    f"{with_q.shed_rate('any'):.0%}/"
                    f"{with_q.shed_rate('bounded'):.0%}/"
                    f"{with_q.shed_rate('critical'):.0%}",
                    f"{without_q.goodput_rps:,.0f}",
                    f"{without_q.p99_ms:,.1f}",
                ]
            )
        return format_table(
            [
                "load",
                "offered/s",
                "goodput/s",
                "p99 ms",
                "shed any/bnd/crit",
                "goodput/s (no admission)",
                "p99 ms (no admission)",
            ],
            rows,
            title=(
                f"Open-loop goodput knee — {self.dataset},"
                f" saturation {self.saturation_rps:,.0f}/s,"
                f" SLO {self.slo_ms:,.0f} ms, queue {self.queue_capacity}"
            ),
        )


def load_benchmark(
    dataset: str = "youtube",
    *,
    num_sources: int = 48,
    duration_s: float = 4.0,
    slo_ms: float = 100.0,
    queue_capacity: int = 8,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 17,
) -> LoadBenchResult:
    """Sweep the knee curve against a real warmed gateway.

    The gateway runs with its own ``admission_queue`` gate enabled so the
    live counters surface in the result, but in this single-threaded
    harness the in-flight depth never exceeds one — the queueing physics
    are simulated in virtual time by :func:`repro.load.run_open_loop`
    while every dispatched request executes for real.
    """
    service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    gateway = Gateway(service, ApiConfig(admission_queue=queue_capacity))
    # Warm the cache (untimed) so saturation reflects steady-state serving.
    gateway.submit(BatchQuery(sources=tuple(range(num_sources)), k=k))

    spec = LoadSpec(
        arrival_rate=100.0,  # placeholder; the sweep rescales per fraction
        duration_s=duration_s,
        num_sources=num_sources,
        read_fraction=0.95,
        consistency_mix=(0.2, 0.3, 0.5),
        diurnal_amplitude=0.25,
        phases=(
            # A hot-key storm over the middle fifth of the run.
            PhaseSpec(
                start_s=duration_s * 0.4,
                end_s=duration_s * 0.6,
                rate_multiplier=1.5,
                hot_keys=(0, 1, 2),
                hot_fraction=0.5,
            ),
        ),
        k=k,
        timeout_ms=slo_ms,
        seed=seed,
    )
    # A long probe matters: refresh cost grows with the deltas the trace's
    # writes accumulate, so a short probe overestimates capacity.
    saturation = measure_saturation(gateway.submit, spec, probes=512)
    admission = knee_sweep(
        gateway.submit,
        spec,
        slo_ms=slo_ms,
        queue_capacity=queue_capacity,
        fractions=fractions,
        saturation=saturation,
    )
    # Collapse arm: unbounded queue, no deadlines — nothing is ever
    # refused, so past saturation the backlog (and latency) only grows.
    unprotected = knee_sweep(
        gateway.submit,
        spec.with_(timeout_ms=None),
        slo_ms=slo_ms,
        queue_capacity=None,
        fractions=fractions,
        saturation=saturation,
    )
    stats = gateway.submit(Stats()).stats
    return LoadBenchResult(
        dataset=dataset,
        cores=available_cores(),
        num_sources=num_sources,
        slo_ms=slo_ms,
        queue_capacity=queue_capacity,
        duration_s=duration_s,
        saturation_rps=saturation,
        admission=admission,
        unprotected=unprotected,
        gateway_admission=stats.get("admission", {}),
    )
