"""Ablation studies on the design choices the paper motivates in prose.

Three studies, each isolating one claim:

* :func:`ablation_parallel_loss` — Lemma 4 / Figure 3 at scale: operation
  counts of the sequential push vs the parallel push as the scheduling
  width (worker count) grows. Shows parallel loss appearing with staler
  reads and eager propagation recovering part of it.
* :func:`ablation_batching` — Section 3.1's motivation: total operations
  of per-update processing (CPU-Base) vs batch processing (CPU-Seq) as
  the batch size grows. Batching collapses repeated work near the source.
* :func:`ablation_frontier_generation` — Section 4.2's cost accounting:
  synchronized duplicate checks per slide under the global queue vs local
  duplicate detection (which performs none), plus the enqueue volumes
  that drive them.
"""

from __future__ import annotations

from typing import Sequence

from ..config import Backend, PushVariant
from ..core.push_sequential import cpu_base_update, cpu_seq_update, sequential_local_push
from ..core.push_parallel import parallel_local_push
from ..core.state import PPRState
from ..core.tracker import DynamicPPRTracker
from .figures import FigureResult
from .workloads import WorkloadSpec, default_config, prepare_workload


def ablation_parallel_loss(
    dataset: str = "youtube",
    *,
    worker_widths: Sequence[int] = (1, 4, 16, 64, 256, 100_000),
    epsilon: float = 1e-5,
) -> FigureResult:
    """Push-operation counts vs scheduling width (sequential as baseline)."""
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    config = default_config(epsilon=epsilon)
    rows: list[Sequence[object]] = []

    def one_slide_state():
        graph = prepared.initial_graph()
        tracker = DynamicPPRTracker(graph, prepared.source, config)
        window = prepared.new_window()
        slide = window.slide()
        from ..core.invariant import restore_batch

        touched, _ = restore_batch(graph, tracker.state, slide.updates, config.alpha)
        return graph, tracker.state, touched

    graph, state, touched = one_slide_state()
    seq_state = state.copy()
    seq = sequential_local_push(seq_state, graph, config, seeds=touched)
    rows.append([dataset, "sequential", "-", seq.pushes, seq.edge_traversals, 1.0])

    for variant in (PushVariant.VANILLA, PushVariant.OPT):
        for workers in worker_widths:
            cfg = config.with_(
                variant=variant, workers=workers, backend=Backend.NUMPY
            )
            par_state = state.copy()
            stats = parallel_local_push(par_state, graph, cfg, seeds=touched)
            rows.append(
                [
                    dataset,
                    variant.value,
                    workers,
                    stats.pushes,
                    stats.edge_traversals,
                    stats.pushes / max(1, seq.pushes),
                ]
            )
    return FigureResult(
        figure="Ablation A1",
        title="Parallel loss: push operations vs scheduling width (Lemma 4)",
        headers=["dataset", "schedule", "workers", "pushes", "edge_ops", "vs_sequential"],
        rows=rows,
    )


def ablation_batching(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
) -> FigureResult:
    """Per-update vs batched processing: total sequential operations."""
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    config = default_config(epsilon=epsilon)
    rows: list[Sequence[object]] = []
    for label, runner in (("per-update (CPU-Base)", cpu_base_update),
                          ("batched (CPU-Seq)", cpu_seq_update)):
        graph = prepared.initial_graph()
        state = PPRState.initial(prepared.source, graph.capacity)
        sequential_local_push(state, graph, config, seeds=[prepared.source])
        window = prepared.new_window()
        pushes = edges = 0
        for slide in window.slides(num_slides):
            batch = runner(state, graph, list(slide.updates), config)
            pushes += batch.sequential_push.pushes
            edges += batch.sequential_push.edge_traversals
        rows.append([dataset, label, pushes, edges, pushes + edges])
    base_total = rows[0][4]
    seq_total = rows[1][4]
    rows.append(
        [dataset, "batching saves", "-", "-", f"{base_total / max(1, seq_total):.2f}x"]
    )
    return FigureResult(
        figure="Ablation A2",
        title="Why batch updates: total sequential operations per slide set",
        headers=["dataset", "processing", "pushes", "edge_ops", "total"],
        rows=rows,
    )


def ablation_frontier_generation(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
) -> FigureResult:
    """Synchronized dedup checks: global queue vs local detection."""
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rows: list[Sequence[object]] = []
    for variant in (PushVariant.VANILLA, PushVariant.DUPDETECT,
                    PushVariant.EAGER, PushVariant.OPT):
        config = default_config(epsilon=epsilon).with_(
            variant=variant, backend=Backend.NUMPY, workers=40
        )
        graph = prepared.initial_graph()
        tracker = DynamicPPRTracker(graph, prepared.source, config)
        window = prepared.new_window()
        attempts = checks = enqueued = 0
        for slide in window.slides(num_slides):
            stats = tracker.apply_batch(list(slide.updates)).push
            attempts += stats.enqueue_attempts
            checks += stats.dedup_checks
            enqueued += sum(rec.enqueued for rec in stats.iterations)
        rows.append([dataset, variant.value, attempts, checks, enqueued])
    return FigureResult(
        figure="Ablation A3",
        title="Frontier generation: synchronized duplicate checks per variant",
        headers=["dataset", "variant", "enqueue_attempts", "sync_dedup_checks", "enqueued"],
        rows=rows,
    )
