"""Per-figure experiment drivers (Figures 4-10 of the evaluation).

Every function regenerates one figure's data as a :class:`FigureResult`
(headers + rows, printable as an aligned table). Parameters default to a
fast configuration; EXPERIMENTS.md records a full run. The *shape* of each
result — orderings, trends, approximate ratios — is what reproduction
means here; see DESIGN.md §2 for the hardware substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import PushVariant
from ..parallel.cost_model import CPUCostModel, GPUCostModel
from ..parallel.simulator import profile_cpu, profile_gpu
from ..utils.tables import format_table
from .harness import Approach, ApproachResult, run_approach
from .workloads import PreparedWorkload, WorkloadSpec, default_config, prepare_workload

#: Datasets in the paper's presentation order.
ALL_DATASETS = ("youtube", "pokec", "livejournal", "orkut", "twitter")

#: Fast defaults: the two ends of the size range.
FAST_DATASETS = ("youtube", "pokec")


@dataclass
class FigureResult:
    """Tabular data for one reproduced figure."""

    figure: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]

    def table(self) -> str:
        return format_table(self.headers, self.rows, title=f"{self.figure}: {self.title}")

    def column(self, name: str) -> list[object]:
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]


def _variant_result(
    prepared: PreparedWorkload,
    variant: PushVariant,
    approach: Approach,
    *,
    epsilon: float,
    num_slides: int,
    workers: int = 40,
) -> ApproachResult:
    return run_approach(
        prepared,
        approach,
        default_config(epsilon=epsilon),
        num_slides=num_slides,
        variant=variant,
        workers=workers,
    )


def fig4_optimizations(
    datasets: Sequence[str] = FAST_DATASETS,
    *,
    epsilon: float = 1e-5,
    num_slides: int = 3,
) -> FigureResult:
    """Figure 4: latency of Opt / Eager / DupDetect / Vanilla per dataset."""
    rows: list[Sequence[object]] = []
    order = (PushVariant.OPT, PushVariant.EAGER, PushVariant.DUPDETECT, PushVariant.VANILLA)
    for name in datasets:
        prepared = prepare_workload(WorkloadSpec(dataset=name))
        for device in (Approach.CPU_MT, Approach.GPU):
            latencies = {}
            for variant in order:
                res = _variant_result(
                    prepared, variant, device, epsilon=epsilon, num_slides=num_slides
                )
                latencies[variant] = res.mean_latency
            speedup = latencies[PushVariant.VANILLA] / latencies[PushVariant.OPT]
            rows.append(
                [
                    name,
                    device.value,
                    latencies[PushVariant.OPT],
                    latencies[PushVariant.EAGER],
                    latencies[PushVariant.DUPDETECT],
                    latencies[PushVariant.VANILLA],
                    speedup,
                ]
            )
    return FigureResult(
        figure="Figure 4",
        title="Effect of optimizations (mean slide latency, simulated s)",
        headers=["dataset", "device", "opt", "eager", "dupdetect", "vanilla", "vanilla/opt"],
        rows=rows,
    )


def fig5_throughput(
    datasets: Sequence[str] = FAST_DATASETS,
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
    batch_fractions: Sequence[float] = (0.01, 0.001),
    include_slow_baselines: bool = True,
) -> FigureResult:
    """Figure 5: streaming throughput (edges/s) of every approach."""
    rows: list[Sequence[object]] = []
    approaches = [Approach.CPU_SEQ, Approach.CPU_MT, Approach.GPU, Approach.LIGRA]
    if include_slow_baselines:
        approaches = [Approach.CPU_BASE, *approaches, Approach.MONTE_CARLO]
    for name in datasets:
        for fraction in batch_fractions:
            prepared = prepare_workload(WorkloadSpec(dataset=name, batch_fraction=fraction))
            for approach in approaches:
                res = run_approach(
                    prepared,
                    approach,
                    default_config(epsilon=epsilon),
                    num_slides=num_slides,
                )
                rows.append(
                    [
                        name,
                        prepared.batch_size,
                        approach.value,
                        res.throughput,
                        res.mean_latency,
                    ]
                )
    return FigureResult(
        figure="Figure 5",
        title="Streaming throughput (stream edges / simulated s)",
        headers=["dataset", "batch", "approach", "throughput", "mean_latency"],
        rows=rows,
    )


def fig6_epsilon(
    dataset: str = "youtube",
    *,
    epsilons: Sequence[float] = (1e-3, 1e-4, 1e-5, 1e-6, 1e-7),
    num_slides: int = 2,
) -> FigureResult:
    """Figure 6: effect of the error threshold epsilon on slide latency."""
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rows: list[Sequence[object]] = []
    for epsilon in epsilons:
        seq = run_approach(
            prepared, Approach.CPU_SEQ, default_config(epsilon=epsilon), num_slides=num_slides
        )
        mt = run_approach(
            prepared, Approach.CPU_MT, default_config(epsilon=epsilon), num_slides=num_slides
        )
        gpu = run_approach(
            prepared, Approach.GPU, default_config(epsilon=epsilon), num_slides=num_slides
        )
        rows.append(
            [
                dataset,
                epsilon,
                seq.mean_latency,
                mt.mean_latency,
                gpu.mean_latency,
                seq.mean_latency / mt.mean_latency,
                seq.mean_latency / gpu.mean_latency,
            ]
        )
    return FigureResult(
        figure="Figure 6",
        title="Effect of epsilon (mean slide latency, simulated s)",
        headers=["dataset", "epsilon", "cpu-seq", "cpu-mt", "gpu", "mt-speedup", "gpu-speedup"],
        rows=rows,
    )


def fig7_source_degree(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
    tiers: Sequence[int] = (10, 1_000, 1_000_000),
) -> FigureResult:
    """Figure 7: effect of the source vertex degree tier (top-K selection)."""
    rows: list[Sequence[object]] = []
    for top_k in tiers:
        prepared = prepare_workload(WorkloadSpec(dataset=dataset, source_top_k=top_k))
        seq = run_approach(
            prepared, Approach.CPU_SEQ, default_config(epsilon=epsilon), num_slides=num_slides
        )
        mt = run_approach(
            prepared, Approach.CPU_MT, default_config(epsilon=epsilon), num_slides=num_slides
        )
        gpu = run_approach(
            prepared, Approach.GPU, default_config(epsilon=epsilon), num_slides=num_slides
        )
        rows.append(
            [
                dataset,
                f"top-{top_k}",
                prepared.source,
                seq.mean_latency,
                mt.mean_latency,
                gpu.mean_latency,
                seq.mean_latency / mt.mean_latency,
            ]
        )
    return FigureResult(
        figure="Figure 7",
        title="Effect of source degree tier (mean slide latency, simulated s)",
        headers=["dataset", "tier", "source", "cpu-seq", "cpu-mt", "gpu", "mt-speedup"],
        rows=rows,
    )


def fig8_batch_size(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
    fractions: Sequence[float] = (0.01, 0.001, 0.0001),
) -> FigureResult:
    """Figure 8: effect of batch size (1% / 0.1% / 0.01% of the window)."""
    rows: list[Sequence[object]] = []
    for fraction in fractions:
        prepared = prepare_workload(WorkloadSpec(dataset=dataset, batch_fraction=fraction))
        seq = run_approach(
            prepared, Approach.CPU_SEQ, default_config(epsilon=epsilon), num_slides=num_slides
        )
        mt = run_approach(
            prepared, Approach.CPU_MT, default_config(epsilon=epsilon), num_slides=num_slides
        )
        gpu = run_approach(
            prepared, Approach.GPU, default_config(epsilon=epsilon), num_slides=num_slides
        )
        rows.append(
            [
                dataset,
                f"{fraction:.2%}",
                prepared.batch_size,
                seq.mean_latency,
                mt.mean_latency,
                gpu.mean_latency,
                seq.mean_latency / mt.mean_latency,
            ]
        )
    return FigureResult(
        figure="Figure 8",
        title="Effect of batch size (mean slide latency, simulated s)",
        headers=["dataset", "fraction", "batch", "cpu-seq", "cpu-mt", "gpu", "mt-speedup"],
        rows=rows,
    )


def fig9_resources(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
    fractions: Sequence[float] = (0.01, 0.001, 0.0001),
) -> FigureResult:
    """Figure 9: simulated resource-consumption profile vs batch size."""
    rows: list[Sequence[object]] = []
    for fraction in sorted(fractions):
        prepared = prepare_workload(WorkloadSpec(dataset=dataset, batch_fraction=fraction))
        mt = run_approach(
            prepared, Approach.CPU_MT, default_config(epsilon=epsilon), num_slides=num_slides
        )
        gpu = run_approach(
            prepared, Approach.GPU, default_config(epsilon=epsilon), num_slides=num_slides
        )
        gpu_prof = profile_gpu(gpu.push_stats, GPUCostModel())
        cpu_prof = profile_cpu(mt.push_stats, CPUCostModel())
        rows.append(
            [
                dataset,
                prepared.batch_size,
                gpu_prof.warp_occupancy,
                gpu_prof.global_load_efficiency,
                cpu_prof.l2_miss_rate,
                cpu_prof.l3_miss_rate,
                cpu_prof.stall_ratio,
            ]
        )
    return FigureResult(
        figure="Figure 9",
        title="Resource consumption vs batch size (simulated profile)",
        headers=["dataset", "batch", "WO", "GLD", "L2DCM", "L3CM", "STL"],
        rows=rows,
    )


def fig10_scalability(
    dataset: str = "youtube",
    *,
    epsilon: float = 1e-5,
    num_slides: int = 2,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 40),
) -> FigureResult:
    """Figure 10: CPU-MT throughput as the core count grows.

    The operation trace is re-collected per core count (the scheduling
    chunk width changes eager behaviour slightly) and priced with the
    matching cost model.
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rows: list[Sequence[object]] = []
    base_throughput: float | None = None
    for cores in core_counts:
        res = run_approach(
            prepared,
            Approach.CPU_MT,
            default_config(epsilon=epsilon),
            num_slides=num_slides,
            workers=cores,
        )
        if base_throughput is None:
            base_throughput = res.throughput
        rows.append(
            [
                dataset,
                cores,
                res.throughput,
                res.mean_latency,
                res.throughput / base_throughput,
            ]
        )
    return FigureResult(
        figure="Figure 10",
        title="Scalability on multi-cores (CPU-MT throughput)",
        headers=["dataset", "cores", "throughput", "mean_latency", "scaling"],
        rows=rows,
    )


def all_figures_fast() -> list[FigureResult]:
    """One fast pass over every figure (used by the smoke test)."""
    return [
        fig4_optimizations(datasets=("youtube",), num_slides=1),
        fig5_throughput(datasets=("youtube",), num_slides=1, batch_fractions=(0.01,)),
        fig6_epsilon(epsilons=(1e-3, 1e-4), num_slides=1),
        fig7_source_degree(tiers=(10, 1_000_000), num_slides=1),
        fig8_batch_size(fractions=(0.01, 0.001), num_slides=1),
        fig9_resources(fractions=(0.01, 0.001), num_slides=1),
        fig10_scalability(core_counts=(1, 8, 40), num_slides=1),
    ]
