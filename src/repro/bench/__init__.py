"""Benchmark harness: sliding-window workloads, approach runners, figures."""

from .figures import (
    FigureResult,
    fig4_optimizations,
    fig5_throughput,
    fig6_epsilon,
    fig7_source_degree,
    fig8_batch_size,
    fig9_resources,
    fig10_scalability,
)
from .harness import Approach, ApproachResult, run_approach
from .workloads import PreparedWorkload, WorkloadSpec, prepare_workload

__all__ = [
    "Approach",
    "ApproachResult",
    "FigureResult",
    "PreparedWorkload",
    "WorkloadSpec",
    "fig10_scalability",
    "fig4_optimizations",
    "fig5_throughput",
    "fig6_epsilon",
    "fig7_source_degree",
    "fig8_batch_size",
    "fig9_resources",
    "prepare_workload",
    "run_approach",
]
