"""Benchmark harness: sliding-window workloads, approach runners, figures.

CLI entry points: ``python -m repro figure <fig4..fig10>`` regenerates one
evaluation figure, ``python -m repro ablation <name>`` runs one ablation,
and ``python -m repro serve-bench <dataset>`` runs the serving-layer
benchmark (:mod:`repro.bench.serving`); see :mod:`repro.cli` and
``docs/architecture.md`` for the figure-to-module mapping.
"""

from .figures import (
    FigureResult,
    fig4_optimizations,
    fig5_throughput,
    fig6_epsilon,
    fig7_source_degree,
    fig8_batch_size,
    fig9_resources,
    fig10_scalability,
)
from .harness import Approach, ApproachResult, run_approach
from .load import LoadBenchResult, load_benchmark
from .serving import ServingBenchResult, serving_benchmark, topk_matches
from .workloads import PreparedWorkload, WorkloadSpec, prepare_workload

__all__ = [
    "Approach",
    "ApproachResult",
    "FigureResult",
    "LoadBenchResult",
    "PreparedWorkload",
    "ServingBenchResult",
    "WorkloadSpec",
    "fig10_scalability",
    "fig4_optimizations",
    "fig5_throughput",
    "fig6_epsilon",
    "fig7_source_degree",
    "fig8_batch_size",
    "fig9_resources",
    "load_benchmark",
    "prepare_workload",
    "run_approach",
    "serving_benchmark",
    "topk_matches",
]
