"""Kernel benchmark: compiled push vs numpy oracle, shm bootstrap scaling.

The experiment behind ``python -m repro kernel-bench`` and
``benchmarks/bench_kernel.py``. Three claims, one per table section:

1. **push speedup** — the compiled forward-push kernel
   (:mod:`repro.kernels`) beats the vectorized numpy engine by >= 5x on
   a *single-threaded* one-slide push over the twitter analog. Single
   thread isolates the per-edge loop the C kernel replaces; the parallel
   tier multiplies whatever this bar measures.
2. **bootstrap flatness** — attaching a replica to a published
   shared-memory snapshot (:mod:`repro.graph.shm` +
   ``PPRService.from_shared_snapshot``) costs ~the same as the graph
   grows 4x in edges, while the legacy eager ``from_graph_arrays``
   bootstrap grows linearly. Attach maps named segments and defers dict
   materialization; nothing it does on the bootstrap path is O(m).
3. **certified equivalence** — certified top-k answers are bit-identical
   between the compiled and numpy kernels at every consistency level
   (FRESH / BOUNDED / ANY), before and after ingest. This is the
   differential-oracle contract CI enforces; here it runs on the real
   serving stack rather than synthetic states.

When the host has no C compiler the speedup section reports the fallback
reason and the bar is waived — the equivalence and bootstrap sections
still run (numpy vs numpy equivalence is trivially true, but the
*machinery* — selection, fallback, shm attach — is still exercised).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..api.requests import ANY, FRESH, Consistency, IngestBatch, TopKQuery
from ..config import (
    Backend,
    KernelConfig,
    KernelMode,
    PPRConfig,
    ServeConfig,
)
from ..core.invariant import restore_invariant
from ..core.push_parallel import parallel_local_push
from ..core.tracker import DynamicPPRTracker
from ..graph import DynamicDiGraph, SharedArrayBundle, rmat_graph
from ..graph.csr import CSRGraph
from ..kernels import describe, load_library
from ..serve.service import PPRService
from ..utils.tables import format_table
from .workloads import WorkloadSpec, default_config, prepare_workload

#: The acceptance bar for the compiled kernel (single-thread, twitter).
SPEEDUP_BAR = 5.0

#: Edge-count multipliers for the bootstrap-scaling section.
GROWTH = (1, 2, 4)


@dataclass
class KernelBenchResult:
    """Outcome of one kernel-vs-oracle run."""

    dataset: str
    mode: str
    backend: str
    reason: str
    numpy_seconds: float
    compiled_seconds: float | None
    push_matched: bool
    #: One row per scale: (multiplier, num_edges, attach_s, eager_s).
    bootstrap_rows: list[tuple[int, int, float, float]] = field(
        default_factory=list
    )
    certified_matched: bool = True
    certified_answers: int = 0

    @property
    def compiled_available(self) -> bool:
        return self.compiled_seconds is not None

    @property
    def speedup(self) -> float | None:
        if self.compiled_seconds is None or self.compiled_seconds == 0:
            return None
        return self.numpy_seconds / self.compiled_seconds

    @property
    def bootstrap_ratio(self) -> float:
        """attach(largest) / attach(smallest) — ~1.0 means flat."""
        if len(self.bootstrap_rows) < 2:
            return 1.0
        first, last = self.bootstrap_rows[0][2], self.bootstrap_rows[-1][2]
        return last / first if first else float("inf")

    @property
    def eager_ratio(self) -> float:
        if len(self.bootstrap_rows) < 2:
            return 1.0
        first, last = self.bootstrap_rows[0][3], self.bootstrap_rows[-1][3]
        return last / first if first else float("inf")

    def table(self) -> str:
        speed = f"{self.speedup:.1f}x" if self.speedup else "n/a"
        compiled = (
            f"{self.compiled_seconds * 1e3:.1f} ms"
            if self.compiled_seconds is not None
            else f"unavailable ({self.reason})"
        )
        rows: list[tuple[object, ...]] = [
            ("backend", f"{self.backend} (mode={self.mode})"),
            ("push numpy", f"{self.numpy_seconds * 1e3:.1f} ms"),
            ("push compiled", compiled),
            ("push speedup", speed),
            ("push bit-identical", str(self.push_matched)),
            (
                "certified top-k identical",
                f"{self.certified_matched} ({self.certified_answers} answers)",
            ),
        ]
        for mult, m, attach_s, eager_s in self.bootstrap_rows:
            rows.append(
                (
                    f"bootstrap {mult}x ({m:,} edges)",
                    f"attach {attach_s * 1e3:.2f} ms"
                    f"  eager {eager_s * 1e3:.1f} ms",
                )
            )
        rows.append(
            (
                "bootstrap growth (attach vs eager)",
                f"{self.bootstrap_ratio:.2f}x vs {self.eager_ratio:.1f}x",
            )
        )
        return format_table(
            ("metric", "value"),
            rows,
            title=f"kernel: compiled push + shm bootstrap ({self.dataset})",
        )


def _push_workload(
    dataset: str, *, epsilon: float, batch_fraction: float
) -> tuple[PPRConfig, CSRGraph, "np.ndarray", list[int], object]:
    """One converged slide's push inputs (graph, state, seeds), workers=1."""
    prepared = prepare_workload(
        WorkloadSpec(dataset=dataset, batch_fraction=batch_fraction)
    )
    config = default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=1
    )
    graph = prepared.initial_graph()
    tracker = DynamicPPRTracker(graph, prepared.source, config)
    window = prepared.new_window()
    slide = window.slide()
    touched = []
    for update in slide.updates:
        graph.apply(update)
        restore_invariant(tracker.state, graph, update, config.alpha)
        touched.append(update.u)
    return config, CSRGraph.from_digraph(graph), graph, touched, tracker.state


def _timed_push(config, csr, graph, seeds, base_state, *, rounds: int):
    best = float("inf")
    final = None
    for _ in range(rounds):
        state = base_state.copy()
        start = time.perf_counter()
        parallel_local_push(state, graph, config, seeds=seeds, csr=csr)
        best = min(best, time.perf_counter() - start)
        final = state
    return best, final


def push_benchmark(
    dataset: str = "twitter",
    *,
    epsilon: float = 1e-5,
    batch_fraction: float = 0.01,
    rounds: int = 3,
) -> tuple[float, float | None, bool]:
    """Single-thread one-slide push: (numpy_s, compiled_s | None, matched)."""
    config, csr, graph, seeds, base_state = _push_workload(
        dataset, epsilon=epsilon, batch_fraction=batch_fraction
    )
    numpy_cfg = config.with_(kernel=KernelConfig(mode=KernelMode.NUMPY))
    numpy_s, numpy_state = _timed_push(
        numpy_cfg, csr, graph, seeds, base_state, rounds=rounds
    )
    library, _ = load_library()
    if library is None:
        return numpy_s, None, True
    compiled_cfg = config.with_(kernel=KernelConfig(mode=KernelMode.COMPILED))
    compiled_s, compiled_state = _timed_push(
        compiled_cfg, csr, graph, seeds, base_state, rounds=rounds
    )
    matched = np.array_equal(numpy_state.p, compiled_state.p) and np.array_equal(
        numpy_state.r, compiled_state.r
    )
    return numpy_s, compiled_s, matched


def bootstrap_benchmark(
    *,
    base_edges: int = 60_000,
    growth: tuple[int, ...] = GROWTH,
    seed: int = 7,
    rounds: int = 5,
) -> list[tuple[int, int, float, float]]:
    """Replica bootstrap cost as the snapshot grows: attach vs eager.

    For each multiplier, publishes one shared-memory snapshot of an RMAT
    graph with ``mult * base_edges`` edges and times (best of ``rounds``)

    * ``PPRService.from_shared_snapshot`` — the zero-copy attach path;
    * ``PPRService.from_graph_arrays`` — the legacy eager rebuild.
    """
    out: list[tuple[int, int, float, float]] = []
    for mult in growth:
        edges = rmat_graph(4_000 * mult, base_edges * mult, rng=seed)
        primary = PPRService(DynamicDiGraph.from_edge_array(edges))
        arrays = dict(primary.graph.to_arrays())
        arrays.update(primary.shared_snapshot_arrays())
        bundle = SharedArrayBundle.create(
            arrays,
            tag="bench",
            meta={
                "num_edges": primary.graph.num_edges,
                "max_vertex": primary.graph.max_vertex_id,
            },
        )
        try:
            descriptor = bundle.descriptor
            attach_s = eager_s = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                PPRService.from_shared_snapshot(descriptor)
                attach_s = min(attach_s, time.perf_counter() - start)
                start = time.perf_counter()
                PPRService.from_graph_arrays(arrays)
                eager_s = min(eager_s, time.perf_counter() - start)
            out.append((mult, primary.graph.num_edges, attach_s, eager_s))
        finally:
            bundle.unlink()
            bundle.close()
    return out


def certified_benchmark(
    dataset: str = "youtube", *, num_sources: int = 8, k: int = 10
) -> tuple[bool, int]:
    """Certified top-k equivalence compiled-vs-numpy across consistency.

    Replays the same FRESH / BOUNDED / ANY + ingest trace against two
    services whose only difference is the kernel mode and compares every
    response field-by-field. Returns (all matched, answers compared).
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    base = default_config(epsilon=1e-5).with_(backend=Backend.NUMPY, workers=4)
    modes = (KernelMode.NUMPY, KernelMode.AUTO)
    services = [
        PPRService(
            prepared.initial_graph(),
            base.with_(kernel=KernelConfig(mode=mode)),
            ServeConfig(cache_capacity=32, top_k=k),
        )
        for mode in modes
    ]
    window = prepared.new_window()
    slide = window.slide()
    updates = tuple(slide.updates)
    graph = prepared.initial_graph()
    by_degree = sorted(
        graph.vertices(), key=lambda u: (-graph.out_degree(u), u)
    )
    sources = [prepared.source] + [
        u for u in by_degree if u != prepared.source
    ][: num_sources - 1]
    trace: list[object] = []
    for consistency in (FRESH, Consistency.bounded(1), ANY):
        trace.extend(
            TopKQuery(source=s, k=k, consistency=consistency) for s in sources
        )
    trace.append(IngestBatch(updates=updates))
    trace.extend(TopKQuery(source=s, k=k, consistency=FRESH) for s in sources)

    answers = 0
    matched = True
    left, right = (svc.gateway.submit_many(trace) for svc in services)
    for a, b in zip(left, right):
        if not hasattr(a, "entries"):
            matched &= a.ok == b.ok
            continue
        answers += 1
        matched &= (
            a.ok == b.ok
            and a.cold == b.cold
            and a.snapshot_version == b.snapshot_version
            and a.staleness == b.staleness
            and [(e.vertex, e.estimate) for e in a.entries]
            == [(e.vertex, e.estimate) for e in b.entries]
        )
    return matched, answers


def kernel_benchmark(
    dataset: str = "twitter", *, tiny: bool = False
) -> KernelBenchResult:
    """The full three-section run (``--tiny`` shrinks every input for CI)."""
    info = describe()
    if tiny:
        push_dataset, batch_fraction, rounds = "youtube", 0.01, 2
        base_edges, growth = 8_000, (1, 4)
        num_sources = 4
    else:
        push_dataset, batch_fraction, rounds = dataset, 0.01, 3
        base_edges, growth = 60_000, GROWTH
        num_sources = 8
    numpy_s, compiled_s, push_matched = push_benchmark(
        push_dataset, batch_fraction=batch_fraction, rounds=rounds
    )
    bootstrap_rows = bootstrap_benchmark(base_edges=base_edges, growth=growth)
    certified_matched, answers = certified_benchmark(
        "youtube", num_sources=num_sources
    )
    return KernelBenchResult(
        dataset=push_dataset,
        mode=info["mode"],
        backend=info["backend"],
        reason=info["reason"],
        numpy_seconds=numpy_s,
        compiled_seconds=compiled_s,
        push_matched=push_matched,
        bootstrap_rows=bootstrap_rows,
        certified_matched=certified_matched,
        certified_answers=answers,
    )
