"""Steady-state ingest+query throughput: delta snapshots vs full rebuild.

The experiment behind ``python -m repro ingest-bench`` and
``benchmarks/bench_ingest.py``: replay the same sliding-window update
stream through two identically-configured :class:`~repro.serve.PPRService`
instances — one deriving its per-version CSR view with the
:attr:`~repro.config.SnapshotStrategy.DELTA` overlay
(:class:`~repro.graph.delta.DeltaCSRGraph`), one paying the
:attr:`~repro.config.SnapshotStrategy.REBUILD` full O(n + m) rebuild —
while a fixed source mix issues top-k queries after every batch, across
the paper's Fig-8 batch-size sweep (1%, 0.1%, 0.01% of the window).

Two things are measured per batch size:

* *steady-state ingest+query throughput* — stream updates ingested per
  second with the per-batch queries included on both sides (the workload
  a serving deployment actually runs);
* *answer equality* — the served ``certified_top_k`` rankings must be
  **bit-identical** between the strategies after every batch, which is
  the delta overlay's order-exactness contract.

The acceptance bar asserted by ``benchmarks/bench_ingest.py``: at the
smallest (Fig-8-style) batch size the delta path is ≥ 3x the rebuild
path. See ``docs/performance.md`` for why the gap grows as batches
shrink.
"""

from __future__ import annotations

from ..obs import clock
from dataclasses import dataclass, field

from ..config import Backend, PPRConfig, ServeConfig, SnapshotStrategy
from ..errors import ConfigError
from ..graph.digraph import DynamicDiGraph
from ..graph.stream import SlidingWindow
from ..serve import PPRService, ServiceMetrics
from ..utils.tables import format_table
from .workloads import WorkloadSpec, default_config, prepare_workload


@dataclass
class IngestStrategyRun:
    """One strategy's measured steady state at one batch size."""

    strategy: SnapshotStrategy
    seconds: float
    updates: int
    queries: int
    metrics: ServiceMetrics = field(repr=False, default_factory=ServiceMetrics)
    #: Served rankings, one ``(source, [(vertex, estimate), ...])`` per
    #: query in issue order — compared bit-for-bit across strategies.
    answers: list[tuple[int, list[tuple[int, float]]]] = field(
        repr=False, default_factory=list
    )

    @property
    def updates_per_second(self) -> float:
        return self.updates / self.seconds if self.seconds else 0.0


@dataclass
class IngestBenchRow:
    """Delta vs rebuild at one batch size."""

    batch_size: int
    batch_fraction: float
    num_slides: int
    rebuild: IngestStrategyRun
    delta: IngestStrategyRun

    @property
    def speedup(self) -> float:
        if not self.rebuild.seconds:
            return float("inf")
        return self.rebuild.seconds / self.delta.seconds if self.delta.seconds else float("inf")

    @property
    def answers_match(self) -> bool:
        """Bit-identical served rankings under both snapshot strategies."""
        return self.rebuild.answers == self.delta.answers


@dataclass
class IngestBenchResult:
    """Outcome of one delta-vs-rebuild ingest benchmark."""

    dataset: str
    num_sources: int
    rows: list[IngestBenchRow]

    @property
    def all_match(self) -> bool:
        return all(row.answers_match for row in self.rows)

    @property
    def smallest_batch_row(self) -> IngestBenchRow:
        return min(self.rows, key=lambda row: row.batch_size)

    def table(self) -> str:
        rows = []
        for row in sorted(self.rows, key=lambda r: -r.batch_size):
            m = row.delta.metrics
            rows.append(
                [
                    f"{row.batch_size} ({row.batch_fraction:.2%})",
                    f"{row.rebuild.updates_per_second:,.0f}",
                    f"{row.delta.updates_per_second:,.0f}",
                    f"{row.speedup:,.1f}x",
                    f"{m.snapshot_delta_applies}/{m.snapshot_consolidations}"
                    f"/{m.snapshot_rebuilds}",
                    "bit-identical" if row.answers_match else "MISMATCH",
                ]
            )
        return format_table(
            [
                "batch (of window)",
                "rebuild upd/s",
                "delta upd/s",
                "speedup",
                "applies/consol/rebuilds",
                "answers",
            ],
            rows,
            title=(
                f"Ingest+query steady state, delta vs rebuild — {self.dataset}"
                f" ({self.num_sources} resident sources, queries included)"
            ),
        )


def _run_strategy(
    prepared,
    strategy: SnapshotStrategy,
    *,
    batch_size: int,
    num_slides: int,
    num_sources: int,
    k: int,
    config: PPRConfig,
    serve: ServeConfig,
) -> IngestStrategyRun:
    """Replay one measured steady-state run under ``strategy``.

    Warm-up (source admission and the first snapshot build) is excluded;
    the timed loop is exactly the steady state: ingest one slide, answer
    the query mix, repeat.
    """
    window = SlidingWindow(
        prepared.stream_edges,
        window_fraction=prepared.spec.window_fraction,
        batch_size=batch_size,
        undirected=prepared.undirected,
    )
    graph = (
        DynamicDiGraph.from_undirected_edges(map(tuple, window.initial_edges.tolist()))
        if prepared.undirected
        else DynamicDiGraph.from_edges(map(tuple, window.initial_edges.tolist()))
    )
    service = PPRService(graph, config, serve.with_(snapshot=strategy))
    sources = _source_mix(graph, num_sources)
    service.query_many(sources, k)  # warm: admit the mix, build snapshot v0

    run = IngestStrategyRun(strategy=strategy, seconds=0.0, updates=0, queries=0)
    start = clock.now()
    for slide in window.slides(num_slides):
        service.ingest(list(slide.updates))
        for s in sources:
            served = service.query(s, k)
            run.answers.append(
                (s, [(e.vertex, e.estimate) for e in served.entries])
            )
        run.updates += slide.num_updates
        run.queries += len(sources)
    run.seconds = clock.now() - start
    run.metrics = service.metrics()
    return run


def _source_mix(
    graph: DynamicDiGraph, num_sources: int, *, tier: int = 1000, seed: int = 9
) -> list[int]:
    """Deterministic Table-2-style source mix: spread across the top tier.

    The paper selects sources at random among the top-``K`` out-degrees
    (Table 2's 10 / 1000 / 10^6 tiers). Picking evenly-spaced ranks
    inside the mid tier keeps the query mix realistic without every
    source being a hub — hub sources turn each refresh into a large
    cascade, which measures push cost, not the snapshot cost this
    benchmark isolates.
    """
    ranked = sorted(
        ((graph.out_degree(v), v) for v in graph.vertices()), reverse=True
    )
    if len(ranked) < num_sources:
        raise ConfigError(
            f"graph has only {len(ranked)} vertices for {num_sources} sources"
        )
    tier = min(tier, len(ranked))
    step = max(tier // (num_sources + 1), 1)
    picks = [(seed + (i + 1) * step) % tier for i in range(num_sources)]
    chosen = []
    for rank in picks:
        while ranked[rank][1] in chosen:  # pragma: no cover - tiny tiers
            rank = (rank + 1) % tier
        chosen.append(ranked[rank][1])
    return chosen


def ingest_benchmark(
    dataset: str = "pokec",
    *,
    batch_fractions: tuple[float, ...] = (0.01, 0.001, 0.0001),
    num_slides: int = 6,
    num_sources: int = 4,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    overlay_threshold: float = 0.25,
    config: PPRConfig | None = None,
) -> IngestBenchResult:
    """Sweep batch sizes, racing delta snapshots against full rebuilds.

    Both strategies replay *exactly* the same stream, admit the same
    sources and answer the same queries; only
    :attr:`~repro.config.ServeConfig.snapshot` differs. Every served
    ranking is recorded and compared bit-for-bit.
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    cfg = config or default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=workers
    )
    serve = ServeConfig(
        cache_capacity=max(num_sources, 1),
        admission_batch=max(num_sources, 1),
        top_k=k,
        snapshot_overlay_threshold=overlay_threshold,
    )
    rows = []
    for fraction in batch_fractions:
        batch_size = SlidingWindow.batch_for_fraction(prepared.window_size, fraction)
        runs = {}
        for strategy in (SnapshotStrategy.REBUILD, SnapshotStrategy.DELTA):
            runs[strategy] = _run_strategy(
                prepared,
                strategy,
                batch_size=batch_size,
                num_slides=num_slides,
                num_sources=num_sources,
                k=k,
                config=cfg,
                serve=serve,
            )
        rows.append(
            IngestBenchRow(
                batch_size=batch_size,
                batch_fraction=fraction,
                num_slides=num_slides,
                rebuild=runs[SnapshotStrategy.REBUILD],
                delta=runs[SnapshotStrategy.DELTA],
            )
        )
    return IngestBenchResult(dataset=dataset, num_sources=num_sources, rows=rows)
