"""Chaos benchmark: scripted faults against the replicated cluster.

The experiment behind ``python -m repro chaos-bench`` and
``benchmarks/bench_chaos.py``: drive a deterministic write/read trace
through a :class:`~repro.cluster.gateway.ClusterGateway` while a
:class:`~repro.chaos.FaultPlan` fires scripted faults at the
cross-process seams — a dropped replication frame early in the trace
(gap detection → replica rebuild) and a primary crash mid-trace
(epoch-bumped failover to the most-caught-up replica).

Four properties are measured, matching the subsystem's acceptance bar:

1. **Zero acked-write loss** — every write the trace acks survives the
   primary crash; the post-heal head equals the acked count.
2. **Availability** — ANY-consistency reads issued after every write
   must all answer, including those landing inside the failover window.
3. **Bounded latency** — no request may hang; the worst read and the
   failover write itself are reported in milliseconds.
4. **Post-heal bit-identity** — FRESH answers for *probe* sources
   (never queried during the run, so no resident state diverges on the
   incremental-refresh path) are bit-identical to a single-process
   oracle fed the same acked writes, at the same version.

The fault schedule is virtual-step (per-site visit counts), not
wall-clock, so the run replays identically on any machine.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

import numpy as np

from .. import chaos
from ..api.requests import ANY, FRESH, IngestBatch, TopKQuery
from ..api.responses import IngestResult, TopKResult
from ..chaos import Fault, FaultKind, FaultPlan
from ..cluster import PPRCluster
from ..config import ClusterConfig, StoreConfig
from ..store import StateStore
from ..obs import clock
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .gateway import workload_service
from .serving import _query_mix


@dataclass
class ChaosBenchResult:
    """Outcome of one scripted-fault run against the cluster tier."""

    dataset: str
    replicas: int
    writes: int
    reads: int
    #: Writes acknowledged by the gateway (all of them must be).
    acked: int
    #: Post-heal head version (must equal ``acked``).
    head: int
    epoch: int
    failovers: int
    respawns: int
    #: ANY reads that failed or errored (must be zero).
    read_failures: int
    max_read_ms: float
    mean_read_ms: float
    #: Latency of the write that triggered the failover.
    failover_write_ms: float
    #: Probe sources compared post-heal against the oracle.
    probes: int
    #: Every probe answer bit-identical to the oracle at matched version.
    matched: bool
    #: ``site:kind`` of every fault the injector actually fired.
    injected: list[str] = field(default_factory=list)

    @property
    def zero_loss(self) -> bool:
        """All writes acked and all acked writes present post-heal."""
        return self.acked == self.writes and self.head == self.acked

    @property
    def available(self) -> bool:
        return self.read_failures == 0

    def passed(self, *, deadline_s: float) -> bool:
        return (
            self.zero_loss
            and self.available
            and self.matched
            and self.failovers >= 1
            and self.max_read_ms <= deadline_s * 1e3
        )

    def table(self) -> str:
        rows = [
            [
                "trace",
                f"{self.writes} single-edge writes, {self.reads} ANY reads,"
                f" {self.replicas} replicas",
            ],
            ["fault plan", ", ".join(self.injected) or "(none fired)"],
            [
                "acked writes survived",
                f"{self.head}/{self.acked} acked"
                + (" — ZERO LOSS" if self.zero_loss else " — LOSS"),
            ],
            [
                "failover",
                f"epoch {self.epoch}, {self.failovers} failover(s),"
                f" {self.respawns} respawn(s)",
            ],
            [
                "availability",
                "all ANY reads answered"
                if self.available
                else f"{self.read_failures} reads FAILED",
            ],
            ["read latency", f"mean {self.mean_read_ms:.2f} ms,"
                             f" max {self.max_read_ms:.2f} ms"],
            ["failover write", f"{self.failover_write_ms:.2f} ms"],
            [
                "post-heal probes",
                f"{self.probes} sources"
                + (" bit-identical to oracle" if self.matched else " MISMATCH"),
            ],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Scripted chaos vs replicated cluster — {self.dataset}",
        )


def chaos_benchmark(
    dataset: str = "youtube",
    *,
    replicas: int = 3,
    writes: int = 10,
    reads_per_write: int = 6,
    kill_at_write: int = 5,
    drop_at_frame: int = 2,
    num_sources: int = 24,
    probes: int = 6,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 11,
) -> ChaosBenchResult:
    """Run the scripted-fault trace and measure the four properties.

    The plan fires two faults, both coordinator-side so replica workers
    never need the plan installed: frame ``drop_at_frame`` to replica
    ``replicas - 1`` is dropped (the seq gap kills that worker; the next
    interaction rebuilds it at head), and write ``kill_at_write`` crashes
    the embedded primary mid-apply (the write itself is forwarded to the
    promoted replica, so its ack must still arrive).

    Reads during the run use ANY consistency and only the first
    ``num_sources`` hot sources; the last ``probes`` sources of the mix
    stay untouched until the post-heal bit-identity check, where both
    arms compute them from scratch at the same head version.
    """
    service, prepared = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources + probes,
        top_k=k,
    )
    oracle, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources + probes,
        top_k=k,
    )
    rng = ensure_rng(seed)
    mix = _query_mix(
        service.graph.out_degree_array(), num_sources + probes, rng
    )
    hot = [int(s) for s in mix[:num_sources]]
    probe_sources = [int(s) for s in mix[num_sources:]]

    window = prepared.new_window()
    slide = window.slide()
    updates = list(slide.updates)[:writes]
    if len(updates) < writes:
        writes = len(updates)

    plan = FaultPlan(
        faults=(
            Fault(
                "cluster.ship",
                FaultKind.DROP,
                at=drop_at_frame,
                replica=replicas - 1,
            ),
            Fault("primary.apply", FaultKind.CRASH, at=kill_at_write),
        ),
        name="bench-drop-then-kill",
    )

    # Store-backed: the WAL is what lets a gap-killed replica rebuild
    # after the embedded primary is gone, and what fences zombie epochs.
    store_dir = tempfile.TemporaryDirectory(prefix="repro-chaos-bench-")
    store = StateStore(store_dir.name, StoreConfig(root=store_dir.name))
    service.attach_store(store)

    cluster = PPRCluster(service, ClusterConfig(replicas=replicas))
    read_latencies: list[float] = []
    read_failures = 0
    acked = 0
    reads = 0
    failover_write_ms = 0.0
    try:
        chaos.install(plan)
        for index, update in enumerate(updates, start=1):
            write = IngestBatch(updates=(update,))
            start = clock.now()
            response = cluster.gateway.submit(write)
            elapsed = clock.now() - start
            assert isinstance(response, IngestResult)
            if response.ok:
                acked += 1
                oracle.gateway.submit(write)
            if index == kill_at_write:
                failover_write_ms = elapsed * 1e3

            burst = [
                TopKQuery(source=s, k=k, consistency=ANY)
                for s in (
                    hot[(index * reads_per_write + j) % len(hot)]
                    for j in range(reads_per_write)
                )
            ]
            start = clock.now()
            answers = cluster.gateway.submit_many(burst)
            read_latencies.append((clock.now() - start) / len(burst))
            reads += len(burst)
            for answer in answers:
                if not isinstance(answer, TopKResult) or answer.error is not None:
                    read_failures += 1

        # Post-heal: drain to head, then compare untouched probes
        # against the oracle — both arms compute from scratch.
        matched = True
        for source in probe_sources:
            query = TopKQuery(source=source, k=k, consistency=FRESH)
            left = cluster.gateway.submit(query)
            right = oracle.gateway.submit(query)
            assert isinstance(left, TopKResult)
            assert isinstance(right, TopKResult)
            if (
                left.error is not None
                or right.error is not None
                or left.snapshot_version != right.snapshot_version
                or [(e.vertex, e.estimate) for e in left.entries]
                != [(e.vertex, e.estimate) for e in right.entries]
            ):
                matched = False

        counters = cluster.gateway.counters
        result = ChaosBenchResult(
            dataset=dataset,
            replicas=replicas,
            writes=writes,
            reads=reads,
            acked=acked,
            head=cluster.gateway._head,
            epoch=cluster.gateway.epoch,
            failovers=counters["failovers"],
            respawns=counters["respawns"],
            read_failures=read_failures,
            max_read_ms=max(read_latencies, default=0.0) * 1e3,
            mean_read_ms=float(np.mean(read_latencies or [0.0])) * 1e3,
            failover_write_ms=failover_write_ms,
            probes=len(probe_sources),
            matched=matched,
            injected=[
                f"{entry['site']}:{entry['kind']}"
                for entry in chaos.injected()
            ],
        )
    finally:
        chaos.reset()
        cluster.close()
        store.close()
        store_dir.cleanup()
    return result
