"""Accuracy-vs-cost study: local update vs incremental Monte-Carlo.

Section 5.1 concedes that the Monte-Carlo baseline runs with far fewer
walks than its theory requires ("we favor Monte-Carlo and set w to a
smaller value ... to improve the performance by trading accuracies").
This study makes the trade measurable: for one maintained workload it
reports, per approach, the *measured max estimation error* against exact
ground truth next to the simulated maintenance latency — the push's
ε-guarantee versus Monte-Carlo's sampling noise at the paper's budget
(``w = 6|V|``) and at more generous budgets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines.montecarlo import IncrementalMonteCarloPPR
from ..config import Backend
from ..core.groundtruth import ground_truth_ppr, max_estimate_error
from ..core.tracker import DynamicPPRTracker
from ..parallel.cost_model import CPUCostModel, MonteCarloCostModel
from .figures import FigureResult
from .workloads import WorkloadSpec, default_config, prepare_workload


def accuracy_study(
    dataset: str = "youtube",
    *,
    epsilons: Sequence[float] = (1e-4, 1e-5),
    walk_budgets: Sequence[int] = (6, 24),
    num_slides: int = 1,
    workers: int = 40,
) -> FigureResult:
    """Measured max error vs simulated latency for both schemes.

    Ground truth is recomputed exactly after the final slide; errors are
    sup-norm over all vertices. Intended for the smaller analogs (exact
    solves are O(m) per sweep).
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rows: list[Sequence[object]] = []

    for epsilon in epsilons:
        config = default_config(epsilon=epsilon).with_(
            backend=Backend.NUMPY, workers=workers
        )
        graph = prepared.initial_graph()
        tracker = DynamicPPRTracker(graph, prepared.source, config)
        model = CPUCostModel(workers=workers)
        window = prepared.new_window()
        latency = 0.0
        for slide in window.slides(num_slides):
            batch = tracker.apply_batch(list(slide.updates))
            latency += model.parallel_latency(
                batch.push, num_updates=len(slide.updates)
            )
        truth = ground_truth_ppr(graph, prepared.source, config.alpha)
        error = max_estimate_error(tracker.estimate_vector(), truth)
        rows.append(
            [
                dataset,
                f"local-update eps={epsilon:g}",
                error,
                epsilon,
                latency / num_slides,
            ]
        )

    for walks in walk_budgets:
        graph = prepared.initial_graph()
        mc = IncrementalMonteCarloPPR(
            graph,
            prepared.source,
            default_config().alpha,
            walks_per_vertex=walks,
            rng=prepared.spec.seed,
        )
        model = MonteCarloCostModel(workers=workers)
        window = prepared.new_window()
        latency = 0.0
        for slide in window.slides(num_slides):
            stats = mc.apply_batch(list(slide.updates))
            latency += model.latency(stats.walk_steps, stats.index_ops)
        truth = ground_truth_ppr(graph, prepared.source, default_config().alpha)
        error = max_estimate_error(mc.estimate_vector(), truth)
        # The binomial standard error of one estimate at p ~ alpha.
        alpha = default_config().alpha
        noise = float(np.sqrt(alpha * (1 - alpha) / walks))
        rows.append(
            [dataset, f"monte-carlo w={walks}/vertex", error, noise, latency / num_slides]
        )

    return FigureResult(
        figure="Accuracy study",
        title="Measured max error vs simulated maintenance latency",
        headers=["dataset", "approach", "measured_error", "error_scale", "latency"],
        rows=rows,
    )
