"""Gateway benchmark: read-coalescing vs per-request dispatch.

The experiment behind ``python -m repro gateway-bench`` and
``benchmarks/bench_gateway.py``: replay the *same* mixed read/write
request trace (sliding-window ingest batches interleaved with
heavy-tailed top-k query bursts) against two identically-configured
engines — one receiving the bursts through
:meth:`repro.api.Gateway.submit_many` (reads coalesced between write
barriers, repeated sources deduplicated, cold admissions batched), the
other dispatching every request individually. Real serving traffic is
heavy-tailed: the same hot sources repeat within a burst constantly,
which is exactly what coalescing exploits.

Answers must be **bit-identical** across the two arms (same engine, same
deterministic trace — the scheduler is not allowed to change results,
only their cost); the acceptance bar is coalesced dispatch >= 2x faster.

This module also hosts :func:`workload_service`, the deterministic
dataset-analog service bootstrap shared by ``repro serve``, the CI
gateway smoke, and this benchmark — determinism is what lets CI assert
the HTTP front-end's answers equal the embedded client's bit-for-bit.
"""

from __future__ import annotations

from ..obs import clock
from dataclasses import dataclass

import numpy as np

from ..api.gateway import Gateway
from ..api.requests import (
    ApiRequest,
    BatchQuery,
    Consistency,
    IngestBatch,
    TopKQuery,
)
from ..api.responses import TopKResult
from ..config import ApiConfig, Backend, PPRConfig, ServeConfig
from ..serve import PPRService
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .serving import _query_mix
from .workloads import PreparedWorkload, WorkloadSpec, default_config, prepare_workload


def workload_service(
    dataset: str,
    *,
    epsilon: float = 1e-5,
    workers: int = 40,
    cache_capacity: int = 64,
    admission_batch: int = 16,
    num_hubs: int = 0,
    top_k: int = 10,
    config: PPRConfig | None = None,
) -> tuple[PPRService, PreparedWorkload]:
    """A deterministic service over a dataset analog's initial window.

    Same spec, same service, bit-for-bit — two processes building from
    the same arguments serve identical certified answers, which is the
    property the gateway CI smoke asserts across the HTTP boundary.
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    cfg = config or default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=workers
    )
    service = PPRService(
        prepared.initial_graph(),
        cfg,
        ServeConfig(
            cache_capacity=cache_capacity,
            admission_batch=admission_batch,
            num_hubs=num_hubs,
            top_k=top_k,
        ),
    )
    return service, prepared


@dataclass
class GatewayBenchResult:
    """Outcome of one coalescing-vs-dispatch race."""

    dataset: str
    num_sources: int
    num_slides: int
    requests: int
    unique_reads: int
    reads_coalesced: int
    coalesced_seconds: float
    dispatch_seconds: float
    ingest_seconds: float
    matched: bool

    @property
    def speedup(self) -> float:
        """Per-request dispatch time over coalesced-schedule time."""
        return (
            self.dispatch_seconds / self.coalesced_seconds
            if self.coalesced_seconds
            else float("inf")
        )

    @property
    def coalesced_qps(self) -> float:
        return self.requests / self.coalesced_seconds if self.coalesced_seconds else 0.0

    @property
    def dispatch_qps(self) -> float:
        return self.requests / self.dispatch_seconds if self.dispatch_seconds else 0.0

    def table(self) -> str:
        rows = [
            ["request trace", f"{self.requests} reads over {self.num_slides} slides,"
                              f" {self.num_sources}-source heavy-tailed mix"],
            ["unique reads", f"{self.unique_reads}"
                             f" ({self.reads_coalesced} duplicates coalesced)"],
            ["coalesced schedule", f"{self.coalesced_qps:,.0f} reads/s"],
            ["per-request dispatch", f"{self.dispatch_qps:,.0f} reads/s"],
            ["speedup", f"{self.speedup:,.1f}x"],
            ["ingest time (each arm)", f"{self.ingest_seconds * 1e3:,.1f} ms"],
            ["answers across arms", "bit-identical" if self.matched else "MISMATCH"],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Gateway read-coalescing vs per-request dispatch — {self.dataset}",
        )


def _answers_identical(a: TopKResult, b: TopKResult) -> bool:
    """Bit-exact ranking equality (vertices and float estimates)."""
    if len(a.entries) != len(b.entries):
        return False
    return all(
        x.vertex == y.vertex and x.estimate == y.estimate
        for x, y in zip(a.entries, b.entries)
    )


def gateway_benchmark(
    dataset: str = "youtube",
    *,
    num_sources: int = 48,
    num_slides: int = 3,
    requests_per_slide: int = 256,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 11,
) -> GatewayBenchResult:
    """Race one request trace through coalesced vs per-request scheduling.

    Per slide: one :class:`~repro.api.requests.IngestBatch` (the write
    barrier, identical in both arms and untimed in the comparison), then
    a Zipf-like burst of top-k reads at ``BOUNDED(num_slides)``
    consistency — the serving fast path, where a read's cost is the
    answer computation itself. (Under FRESH, both arms spend their time
    in identical once-per-source refresh pushes after each write, which
    measures the push engine, not the scheduler.) Arm one submits each
    burst via ``submit_many`` (coalescing on); arm two dispatches the
    same requests one ``submit`` at a time. Both engines replay
    identical traffic, so every response pair must be bit-identical.
    """
    coalesced_gw = _fresh_gateway(dataset, num_sources, k, epsilon, workers)
    dispatch_gw = _fresh_gateway(dataset, num_sources, k, epsilon, workers)
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rng = ensure_rng(seed)
    mix = _query_mix(
        coalesced_gw.service.graph.out_degree_array(), num_sources, rng
    )
    # Heavy-tailed popularity (rank^-1.5), as in the serving benchmark.
    weights = np.arange(1, num_sources + 1, dtype=np.float64) ** -1.5
    weights /= weights.sum()

    # Warm both engines identically: admit the whole mix in batched
    # pushes (untimed — cold admission costs one identical from-scratch
    # push per source in either arm; the race is about scheduling).
    warm = BatchQuery(sources=tuple(int(s) for s in mix), k=k)
    coalesced_gw.submit(warm)
    dispatch_gw.submit(warm)

    window = prepared.new_window()
    coalesced_seconds = 0.0
    dispatch_seconds = 0.0
    ingest_seconds = 0.0
    requests = 0
    unique_reads = 0
    matched = True
    for slide in window.slides(num_slides):
        write = IngestBatch(updates=tuple(slide.updates))
        start = clock.now()
        coalesced_gw.submit(write)
        ingest_seconds += clock.now() - start
        dispatch_gw.submit(write)

        chosen = rng.choice(mix, size=requests_per_slide, p=weights)
        bounded = Consistency.bounded(num_slides)
        burst: list[ApiRequest] = [
            TopKQuery(source=int(s), k=k, consistency=bounded) for s in chosen
        ]
        requests += len(burst)
        unique_reads += len(set(int(s) for s in chosen))

        start = clock.now()
        coalesced = coalesced_gw.submit_many(burst, coalesce=True)
        coalesced_seconds += clock.now() - start

        start = clock.now()
        dispatched = [dispatch_gw.submit(request) for request in burst]
        dispatch_seconds += clock.now() - start

        for left, right in zip(coalesced, dispatched):
            assert isinstance(left, TopKResult) and isinstance(right, TopKResult)
            if left.error or right.error or not _answers_identical(left, right):
                matched = False

    return GatewayBenchResult(
        dataset=dataset,
        num_sources=num_sources,
        num_slides=num_slides,
        requests=requests,
        unique_reads=unique_reads,
        reads_coalesced=coalesced_gw.counters["reads_coalesced"],
        coalesced_seconds=coalesced_seconds,
        dispatch_seconds=dispatch_seconds,
        ingest_seconds=ingest_seconds,
        matched=matched,
    )


def _fresh_gateway(
    dataset: str, num_sources: int, k: int, epsilon: float, workers: int
) -> Gateway:
    service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    return Gateway(service, ApiConfig())
