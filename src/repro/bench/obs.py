"""Tracing-overhead benchmark: is the observability layer cheap enough?

The experiment behind ``python -m repro obs-bench`` and
``benchmarks/bench_obs.py``: replay the *same* deterministic burst of
resident top-k reads through one warmed service twice per round — once
with tracing disabled, once with tracing enabled at a production-like
sample rate — and compare the best round of each arm. Resident reads
are the cheapest requests the system serves, so per-request tracing
cost is at its *largest* relative to useful work here; the acceptance
bar (< 3% at 1% sampling) is conservative by construction.

The arms are interleaved round by round (disabled, sampled, disabled,
sampled, ...) so CPU-frequency drift and cache warmth hit both equally,
and each arm's time is its best (minimum) round — the standard
noise-floor estimator for micro-scale comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..api.client import Client
from ..api.requests import Consistency
from ..config import ObsConfig
from ..obs import clock
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .gateway import workload_service
from .serving import _query_mix


@dataclass
class ObsBenchResult:
    """Outcome of one disabled-vs-sampled tracing race."""

    dataset: str
    num_sources: int
    rounds: int
    queries_per_round: int
    sample_rate: float
    #: Best (minimum) round wall time per arm, seconds.
    disabled_seconds: float
    sampled_seconds: float

    @property
    def overhead_pct(self) -> float:
        """Relative cost of sampled tracing over the disabled arm, in %."""
        if self.disabled_seconds <= 0:
            return 0.0
        return (self.sampled_seconds / self.disabled_seconds - 1.0) * 100.0

    @property
    def disabled_qps(self) -> float:
        return self.queries_per_round / max(self.disabled_seconds, 1e-12)

    @property
    def sampled_qps(self) -> float:
        return self.queries_per_round / max(self.sampled_seconds, 1e-12)

    def table(self) -> str:
        rows = [
            ["query mix", f"{self.num_sources} resident sources,"
                          f" {self.queries_per_round} reads/round"],
            ["rounds (interleaved)", f"{self.rounds} per arm, best-of"],
            ["tracing disabled", f"{self.disabled_qps:,.0f} reads/s"],
            [f"sampled at {self.sample_rate:.0%}",
             f"{self.sampled_qps:,.0f} reads/s"],
            ["overhead", f"{self.overhead_pct:+.2f}%"],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Tracing overhead — {self.dataset}",
        )


def obs_benchmark(
    dataset: str = "youtube",
    *,
    num_sources: int = 32,
    queries_per_round: int = 512,
    rounds: int = 5,
    sample_rate: float = 0.01,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 23,
) -> ObsBenchResult:
    """Measure sampled-tracing overhead on the resident-read fast path.

    Builds one deterministic dataset-analog service, admits ``num_sources``
    sources (untimed), then races identical heavy-tailed read bursts with
    the global tracer disabled vs enabled at ``sample_rate``. The tracer
    is reset to its disabled default before returning.
    """
    service, _ = workload_service(
        dataset, epsilon=epsilon, workers=workers, top_k=k
    )
    client = Client(service)
    rng = ensure_rng(seed)
    mix = _query_mix(service.graph.out_degree_array(), num_sources, rng)
    weights = np.arange(1, num_sources + 1, dtype=np.float64) ** -1.5
    weights /= weights.sum()
    # One frozen query sequence per round, replayed identically by both
    # arms — the comparison is tracing cost, never workload variance.
    bursts = [
        [int(s) for s in rng.choice(mix, size=queries_per_round, p=weights)]
        for _ in range(rounds)
    ]
    # Reads stay on the resident fast path: a huge staleness bound means
    # no refresh pushes, so per-request work is minimal and the relative
    # tracing cost is maximal.
    lax = Consistency.bounded(1_000_000)

    # Warm: admit every source once (cold pushes are identical either way).
    client.top_k_many([int(s) for s in mix], k, consistency=lax)

    sampled_config = ObsConfig(enabled=True, sample_rate=sample_rate)
    disabled_best = float("inf")
    sampled_best = float("inf")
    try:
        for burst in bursts:
            obs.reset()  # disabled arm
            start = clock.now()
            for source in burst:
                client.top_k(source, k, consistency=lax)
            disabled_best = min(disabled_best, clock.now() - start)

            obs.configure(sampled_config)
            start = clock.now()
            for source in burst:
                client.top_k(source, k, consistency=lax)
            sampled_best = min(sampled_best, clock.now() - start)
    finally:
        obs.reset()
    return ObsBenchResult(
        dataset=dataset,
        num_sources=num_sources,
        rounds=rounds,
        queries_per_round=queries_per_round,
        sample_rate=sample_rate,
        disabled_seconds=disabled_best,
        sampled_seconds=sampled_best,
    )
