"""Cluster benchmark: replicated serving vs the single-process gateway.

The experiment behind ``python -m repro cluster-bench`` and
``benchmarks/bench_cluster.py``: replay the *same* mixed read-heavy
request trace (sliding-window ingest batches interleaved with
heavy-tailed top-k bursts at FRESH / BOUNDED / ANY consistency) against
two identically-configured deployments — one a single-process
:class:`~repro.api.gateway.Gateway`, the other a
:class:`~repro.cluster.gateway.ClusterGateway` over N replica worker
processes with ``HASHED`` placement.

Why this scales: under FRESH consistency every write makes every hot
source stale, and the refresh pushes that follow are the dominant cost
of the read path. Hashed placement pins each source's resident state to
one replica, so each worker refreshes only its partition — work the
single process must do serially runs in parallel across cores.

Correctness is half the acceptance bar: both arms plan the *same*
schedule (:mod:`repro.api.scheduling`) and every response pair must be
**bit-identical** — entries, cold flags, snapshot versions, staleness.
Each BOUNDED/ANY answer must additionally honor its staleness contract
against the head version. The throughput bar (>= 2.5x with 4 replicas)
only means anything with enough cores to park the replicas on, so
:attr:`ClusterBenchResult.cores` is reported alongside.
"""

from __future__ import annotations

import os
from ..obs import clock
from dataclasses import dataclass

import numpy as np

from ..api.gateway import Gateway
from ..api.requests import (
    ANY,
    FRESH,
    ApiRequest,
    BatchQuery,
    Consistency,
    IngestBatch,
    TopKQuery,
)
from ..api.responses import TopKResult
from ..cluster import PPRCluster
from ..config import ApiConfig, ClusterConfig
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .gateway import workload_service
from .serving import _query_mix
from .workloads import WorkloadSpec, prepare_workload


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


@dataclass
class ClusterBenchResult:
    """Outcome of one replicated-vs-single-process race."""

    dataset: str
    replicas: int
    cores: int
    num_sources: int
    num_slides: int
    requests: int
    cluster_seconds: float
    single_seconds: float
    ingest_seconds: float
    #: Every response pair bit-identical across arms.
    matched: bool
    #: Every BOUNDED/ANY/FRESH answer honored its staleness contract.
    bounded_ok: bool
    respawns: int

    @property
    def speedup(self) -> float:
        """Single-process time over cluster time on the same trace."""
        return (
            self.single_seconds / self.cluster_seconds
            if self.cluster_seconds
            else float("inf")
        )

    @property
    def cluster_qps(self) -> float:
        return self.requests / self.cluster_seconds if self.cluster_seconds else 0.0

    @property
    def single_qps(self) -> float:
        return self.requests / self.single_seconds if self.single_seconds else 0.0

    def table(self) -> str:
        rows = [
            [
                "request trace",
                f"{self.requests} reads over {self.num_slides} slides,"
                f" {self.num_sources}-source heavy-tailed mix (FRESH/BOUNDED/ANY)",
            ],
            [
                "deployment",
                f"{self.replicas} replica processes on {self.cores} usable cores",
            ],
            ["cluster gateway", f"{self.cluster_qps:,.0f} reads/s"],
            ["single-process gateway", f"{self.single_qps:,.0f} reads/s"],
            ["speedup", f"{self.speedup:,.1f}x"],
            ["ingest time (each arm)", f"{self.ingest_seconds * 1e3:,.1f} ms"],
            ["answers across arms", "bit-identical" if self.matched else "MISMATCH"],
            ["staleness contracts", "honored" if self.bounded_ok else "VIOLATED"],
            ["replica respawns", str(self.respawns)],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"Replicated cluster vs single-process gateway — {self.dataset}",
        )


def _pairs_identical(left: TopKResult, right: TopKResult) -> bool:
    """Bit-exact response equality: ranking, floats, and envelope."""
    if left.error is not None or right.error is not None:
        return False
    if (
        left.source != right.source
        or left.cold != right.cold
        or left.snapshot_version != right.snapshot_version
        or left.staleness != right.staleness
        or len(left.entries) != len(right.entries)
    ):
        return False
    return all(
        x.vertex == y.vertex and x.estimate == y.estimate
        for x, y in zip(left.entries, right.entries)
    )


def _contract_honored(
    request: TopKQuery, response: TopKResult, head: int
) -> bool:
    """Did the answer respect its consistency contract against head?

    FRESH answers must be at head; BOUNDED(s) within ``s`` versions of
    it; ANY anywhere at or before head. (The bit-identity check already
    ties the answer to a legitimate single-process state at that
    version; this pins the version itself inside the contract.)
    """
    bound = request.consistency.max_staleness
    if response.snapshot_version > head:
        return False
    if bound is None:
        return True
    return head - response.snapshot_version <= bound


def cluster_benchmark(
    dataset: str = "youtube",
    *,
    replicas: int = 4,
    num_sources: int = 48,
    num_slides: int = 3,
    requests_per_slide: int = 256,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    seed: int = 11,
) -> ClusterBenchResult:
    """Race one read-heavy trace through the cluster vs one process.

    Per slide: one :class:`~repro.api.requests.IngestBatch` applied to
    both arms (untimed in the comparison), then one burst of top-k reads
    drawn from a Zipf-like source mix, issued as consistency blocks —
    ~60% FRESH (every stale source pays a refresh), ~30%
    ``BOUNDED(num_slides)``, ~10% ANY. Both arms receive the identical
    request list through ``submit_many``; the cluster splits each
    coalesced run across replicas by hashed placement while the single
    process serves it serially.
    """
    single_service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    single = Gateway(single_service, ApiConfig())
    cluster_service, _ = workload_service(
        dataset,
        epsilon=epsilon,
        workers=workers,
        cache_capacity=num_sources,
        top_k=k,
    )
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    rng = ensure_rng(seed)
    mix = _query_mix(single_service.graph.out_degree_array(), num_sources, rng)
    weights = np.arange(1, num_sources + 1, dtype=np.float64) ** -1.5
    weights /= weights.sum()

    cluster = PPRCluster(cluster_service, ClusterConfig(replicas=replicas))
    try:
        # Warm both arms identically (untimed): admit the whole mix in
        # batched pushes, each replica admitting its own partition.
        warm = BatchQuery(sources=tuple(int(s) for s in mix), k=k)
        single.submit(warm)
        cluster.gateway.submit(warm)

        bounded = Consistency.bounded(num_slides)
        window = prepared.new_window()
        cluster_seconds = 0.0
        single_seconds = 0.0
        ingest_seconds = 0.0
        requests = 0
        matched = True
        bounded_ok = True
        for slide in window.slides(num_slides):
            write = IngestBatch(updates=tuple(slide.updates))
            start = clock.now()
            cluster.gateway.submit(write)
            ingest_seconds += clock.now() - start
            single.submit(write)
            head = single_service.graph_version

            drawn = rng.choice(mix, size=requests_per_slide, p=weights)
            chosen = [int(s) for s in drawn]
            cut_fresh = int(len(chosen) * 0.6)
            cut_bounded = int(len(chosen) * 0.9)
            burst: list[ApiRequest] = [
                TopKQuery(source=s, k=k, consistency=FRESH)
                for s in chosen[:cut_fresh]
            ]
            burst += [
                TopKQuery(source=s, k=k, consistency=bounded)
                for s in chosen[cut_fresh:cut_bounded]
            ]
            burst += [
                TopKQuery(source=s, k=k, consistency=ANY)
                for s in chosen[cut_bounded:]
            ]
            requests += len(burst)

            start = clock.now()
            replicated = cluster.gateway.submit_many(burst)
            cluster_seconds += clock.now() - start

            start = clock.now()
            serial = single.submit_many(burst)
            single_seconds += clock.now() - start

            for request, left, right in zip(burst, replicated, serial):
                assert isinstance(request, TopKQuery)
                assert isinstance(left, TopKResult)
                assert isinstance(right, TopKResult)
                if not _pairs_identical(left, right):
                    matched = False
                if not _contract_honored(request, left, head):
                    bounded_ok = False
        respawns = cluster.gateway.counters["respawns"]
    finally:
        cluster.close()

    return ClusterBenchResult(
        dataset=dataset,
        replicas=replicas,
        cores=available_cores(),
        num_sources=num_sources,
        num_slides=num_slides,
        requests=requests,
        cluster_seconds=cluster_seconds,
        single_seconds=single_seconds,
        ingest_seconds=ingest_seconds,
        matched=matched,
        bounded_ok=bounded_ok,
        respawns=respawns,
    )
