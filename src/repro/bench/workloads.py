"""Sliding-window benchmark workloads (the paper's Section 5.1 setup).

A :class:`WorkloadSpec` names a dataset analog and the stream parameters;
:func:`prepare_workload` materializes the timestamped stream once (cached)
and hands out fresh :class:`SlidingWindow`/graph pairs so every approach
replays *exactly the same* update sequence.

Source-vertex selection follows Table 2: a random vertex among the top-K
out-degrees. On the scaled analogs, K = 10 stays 10 ("top-10"), K = 1000
is a mid-degree tier, and K = 1e6 exceeds n and degenerates to a uniformly
random vertex — the same qualitative tiers as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..config import PPRConfig
from ..errors import ConfigError
from ..graph.datasets import dataset_edges, get_spec
from ..graph.digraph import DynamicDiGraph
from ..graph.stream import SlidingWindow, random_permutation_stream
from ..utils.rng import ensure_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark configuration.

    ``batch_fraction`` is the slide size as a fraction of the window
    (paper: 1%, 0.1%, 0.01%); ``source_top_k`` the degree tier for source
    selection (10 / 1_000 / 1_000_000 in Table 2).
    """

    dataset: str = "youtube"
    batch_fraction: float = 0.01
    window_fraction: float = 0.10
    source_top_k: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        get_spec(self.dataset)  # validates the name
        if not 0.0 < self.batch_fraction <= 1.0:
            raise ConfigError(f"batch_fraction must be in (0,1], got {self.batch_fraction}")
        if self.source_top_k < 1:
            raise ConfigError(f"source_top_k must be >= 1, got {self.source_top_k}")


@dataclass
class PreparedWorkload:
    """A materialized stream plus factory methods for fresh replays."""

    spec: WorkloadSpec
    stream_edges: np.ndarray = field(repr=False)
    undirected: bool = False
    window_size: int = 0
    batch_size: int = 0
    source: int = 0

    def new_window(self) -> SlidingWindow:
        """A fresh sliding window positioned after initialization."""
        return SlidingWindow(
            self.stream_edges,
            window_fraction=self.spec.window_fraction,
            batch_size=self.batch_size,
            undirected=self.undirected,
        )

    def initial_graph(self) -> DynamicDiGraph:
        """The graph holding the initial window contents."""
        initial = self.stream_edges[: self.window_size]
        if self.undirected:
            return DynamicDiGraph.from_undirected_edges(map(tuple, initial.tolist()))
        return DynamicDiGraph.from_edges(map(tuple, initial.tolist()))

    @property
    def updates_per_slide(self) -> int:
        """Directed updates per slide (insert + delete, 2x if undirected)."""
        per_edge = 2 if self.undirected else 1
        return 2 * self.batch_size * per_edge

    def describe(self) -> str:
        return (
            f"{self.spec.dataset}: window={self.window_size}"
            f" batch={self.batch_size} source={self.source}"
            f" undirected={self.undirected}"
        )


@lru_cache(maxsize=32)
def _prepared_cache(spec: WorkloadSpec) -> PreparedWorkload:
    dataset = get_spec(spec.dataset)
    rng = ensure_rng(spec.seed)
    edges = random_permutation_stream(dataset_edges(spec.dataset), rng)
    window_size = int(len(edges) * spec.window_fraction)
    batch_size = SlidingWindow.batch_for_fraction(window_size, spec.batch_fraction)

    # Source: random among the top-K out-degree vertices of the initial window.
    initial = edges[:window_size]
    dout = np.bincount(initial[:, 0], minlength=dataset.num_vertices)
    if not dataset.directed:
        dout = dout + np.bincount(
            initial[:, 1], minlength=len(dout)
        )  # both directions exist
    k = min(spec.source_top_k, int((dout > 0).sum()))
    top = np.argsort(dout)[::-1][:k]
    source = int(top[rng.integers(0, len(top))])

    return PreparedWorkload(
        spec=spec,
        stream_edges=edges,
        undirected=not dataset.directed,
        window_size=window_size,
        batch_size=batch_size,
        source=source,
    )


def prepare_workload(spec: WorkloadSpec) -> PreparedWorkload:
    """Materialize (or fetch the cached) workload for ``spec``."""
    return _prepared_cache(spec)


def default_config(epsilon: float = 1e-5, alpha: float = 0.15) -> PPRConfig:
    """The benchmark default algorithm configuration.

    Parameter scaling: the amortized push work per update is governed by
    ``n * epsilon`` (Theorem 1's ``K/(n eps)`` term). The paper's default
    epsilon (~1e-7) on million-vertex graphs gives ``n*eps ~ 0.1-4``; the
    analogs are ~100x smaller, so the default scales to 1e-5 to preserve
    the same work regime (see EXPERIMENTS.md, "parameter scaling").
    """
    return PPRConfig(alpha=alpha, epsilon=epsilon)
