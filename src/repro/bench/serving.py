"""Serving-layer benchmark: query throughput from maintained state.

The experiment behind ``python -m repro serve-bench`` and
``benchmarks/bench_serving.py``: replay a sliding-window update stream
through a :class:`~repro.serve.PPRService` while a heavy-tailed mix of
sources issues top-k queries, and compare the served query throughput
against the *per-query recomputation* baseline — a from-scratch
vectorized push at the same ε for every query (what an application
without maintained state would do; the baseline is even granted a
pre-built CSR snapshot).

Reported alongside throughput: p50/p99 *arrival staleness* (how many
ingested updates a resident state was behind when its query arrived —
the lag a non-refreshing server would have answered with) and a
correctness probe checking served top-k rankings against fresh
:func:`~repro.core.certify.certified_top_k` computations on the same
final graph.
"""

from __future__ import annotations

from ..obs import clock
from dataclasses import dataclass, field

import numpy as np

from ..config import Backend, PPRConfig, ServeConfig
from ..core.certify import CertifiedEntry, certified_top_k
from ..core.push_parallel import parallel_local_push
from ..core.state import PPRState
from ..errors import ConfigError
from ..graph.csr import CSRGraph
from ..serve import PPRService, ServiceMetrics
from ..utils.rng import ensure_rng
from ..utils.tables import format_table
from .workloads import WorkloadSpec, default_config, prepare_workload


def topk_matches(
    served: list[CertifiedEntry],
    fresh: list[CertifiedEntry],
    epsilon: float,
) -> bool:
    """Whether two ε-approximate top-k rankings agree up to ε-ties.

    Both rankings carry per-vertex error at most ``epsilon``, so two
    correct answers may still swap vertices whose true values are within
    ``2 * epsilon`` of each other. Position ``i`` matches when the vertex
    ids agree, or when the estimates differ by at most ``2 * epsilon``
    (an admissible tie swap).
    """
    if len(served) != len(fresh):
        return False
    for a, b in zip(served, fresh):
        if a.vertex != b.vertex and abs(a.estimate - b.estimate) > 2.0 * epsilon:
            return False
    return True


@dataclass
class ServingBenchResult:
    """Outcome of one serving-benchmark run."""

    dataset: str
    num_sources: int
    num_slides: int
    updates_ingested: int
    served_queries: int
    serve_seconds: float
    ingest_seconds: float
    baseline_queries: int
    baseline_seconds: float
    p50_staleness: float
    p99_staleness: float
    topk_matched: bool
    metrics: ServiceMetrics = field(repr=False, default_factory=ServiceMetrics)

    @property
    def serve_qps(self) -> float:
        """Served queries per second, ingest cost included.

        Charging the maintenance (ingest + snapshot) time to the query
        side keeps the comparison end-to-end honest: the baseline has no
        maintenance cost at all.
        """
        total = self.serve_seconds + self.ingest_seconds
        return self.served_queries / total if total else 0.0

    @property
    def baseline_qps(self) -> float:
        """Per-query from-scratch recomputation throughput."""
        return (
            self.baseline_queries / self.baseline_seconds
            if self.baseline_seconds
            else 0.0
        )

    @property
    def speedup(self) -> float:
        """Served throughput over per-query recomputation throughput."""
        return self.serve_qps / self.baseline_qps if self.baseline_qps else float("inf")

    def table(self) -> str:
        rows = [
            ["query mix", f"{self.num_sources} sources, {self.served_queries} queries"],
            ["stream", f"{self.num_slides} slides, {self.updates_ingested} updates"],
            ["served throughput", f"{self.serve_qps:,.0f} queries/s"],
            ["baseline throughput", f"{self.baseline_qps:,.0f} queries/s"],
            ["speedup", f"{self.speedup:,.1f}x"],
            ["ingest time", f"{self.ingest_seconds * 1e3:,.1f} ms total"],
            [
                "arrival staleness",
                f"p50={self.p50_staleness:.0f} p99={self.p99_staleness:.0f} updates",
            ],
            ["top-k vs fresh recompute", "match" if self.topk_matched else "MISMATCH"],
        ]
        return format_table(
            ["metric", "value"],
            rows,
            title=f"PPRService vs per-query recomputation — {self.dataset}",
        )


def _query_mix(
    dout: np.ndarray, num_sources: int, rng: np.random.Generator
) -> np.ndarray:
    """A who-to-follow style source mix: half top-degree, half random."""
    active = np.flatnonzero(dout > 0)
    if len(active) < num_sources:
        raise ConfigError(
            f"graph has only {len(active)} active vertices for {num_sources} sources"
        )
    num_top = num_sources // 2
    top = active[np.argsort(dout[active])[::-1][:num_top]]
    rest = rng.choice(np.setdiff1d(active, top), num_sources - num_top, replace=False)
    return np.concatenate([top, rest])


def serving_benchmark(
    dataset: str = "youtube",
    *,
    num_sources: int = 64,
    num_slides: int = 4,
    queries_per_slide: int = 256,
    k: int = 10,
    epsilon: float = 1e-5,
    workers: int = 40,
    baseline_queries: int = 12,
    verify_sources: int = 4,
    seed: int = 7,
    config: PPRConfig | None = None,
) -> ServingBenchResult:
    """Serve a multi-source query mix over a sliding update stream.

    Phases: (1) warm the cache by admitting the whole source mix in
    batched pushes; (2) for each window slide, ingest the update batch
    (installing the window's shared CSR snapshot) and answer a Zipf-like
    sample of queries; (3) replay a sample of the same queries as
    per-query from-scratch pushes on the final graph; (4) verify served
    rankings against fresh :func:`certified_top_k` computations.
    """
    prepared = prepare_workload(WorkloadSpec(dataset=dataset))
    cfg = config or default_config(epsilon=epsilon).with_(
        backend=Backend.NUMPY, workers=workers
    )
    rng = ensure_rng(seed)
    graph = prepared.initial_graph()
    service = PPRService(
        graph,
        cfg,
        ServeConfig(cache_capacity=num_sources, admission_batch=16, top_k=k),
    )
    mix = _query_mix(graph.out_degree_array(), num_sources, rng)
    # Heavy-tailed popularity over the mix: rank r queried with weight
    # r^-1.5 (between Zipf exponents observed for social-query traffic).
    weights = np.arange(1, num_sources + 1, dtype=np.float64) ** -1.5
    weights /= weights.sum()

    # Phase 1 — warm: admit every source in the mix (batched pushes).
    service.query_many([int(s) for s in mix], k)
    warm_queries = service.metrics().queries

    # Phase 2 — serve over the sliding stream.
    window = prepared.new_window()
    ingest_seconds = 0.0
    serve_seconds = 0.0
    served_queries = 0
    for slide in window.slides(num_slides):
        start = clock.now()
        service.ingest(slide)
        service.set_snapshot(window.snapshot(capacity=service.graph.capacity))
        ingest_seconds += clock.now() - start
        chosen = rng.choice(mix, size=queries_per_slide, p=weights)
        start = clock.now()
        for s in chosen:
            service.query(int(s), k)
        serve_seconds += clock.now() - start
        served_queries += queries_per_slide

    # Phase 3 — baseline: per-query from-scratch push at matched ε on the
    # final graph (granted a pre-built snapshot; still one full push per
    # query, which is exactly what maintained state avoids).
    baseline_mix = rng.choice(mix, size=baseline_queries, p=weights)
    csr = CSRGraph.from_digraph(graph)
    start = clock.now()
    for s in baseline_mix:
        state = PPRState.initial(int(s), graph.capacity)
        parallel_local_push(state, graph, cfg, seeds=[int(s)], csr=csr)
        certified_top_k(state, k)
    baseline_seconds = clock.now() - start

    # Phase 4 — correctness: served answers vs fresh recomputation.
    matched = True
    for s in mix[:verify_sources]:
        served = service.query(int(s), k)
        state = PPRState.initial(int(s), graph.capacity)
        parallel_local_push(state, graph, cfg, seeds=[int(s)], csr=csr)
        if not topk_matches(served.entries, certified_top_k(state, k), cfg.epsilon):
            matched = False

    metrics = service.metrics()
    staleness = np.asarray(metrics.staleness_samples[warm_queries:], dtype=np.float64)
    if staleness.size == 0:
        staleness = np.zeros(1)
    return ServingBenchResult(
        dataset=dataset,
        num_sources=num_sources,
        num_slides=num_slides,
        updates_ingested=metrics.updates_ingested,
        served_queries=served_queries,
        serve_seconds=serve_seconds,
        ingest_seconds=ingest_seconds,
        baseline_queries=baseline_queries,
        baseline_seconds=baseline_seconds,
        p50_staleness=float(np.percentile(staleness, 50)),
        p99_staleness=float(np.percentile(staleness, 99)),
        topk_matched=matched,
        metrics=metrics,
    )
