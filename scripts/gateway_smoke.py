"""Gateway CI smoke: HTTP answers must equal the embedded client's.

Starts ``python -m repro serve`` on a toy dataset analog as a real
subprocess, waits for ``/v1/healthz``, requests a certified top-k over
the socket, and asserts it is **bit-for-bit identical** (vertex ids and
float estimates) to the answer the embedded :class:`repro.api.Client`
produces for the same snapshot version — the service bootstrap
(:func:`repro.bench.gateway.workload_service`) is deterministic, so two
processes built from the same arguments must serve the same floats.
Also exercises the 4xx paths: malformed JSON, unknown route, unknown op.

Run from the repository root:  PYTHONPATH=src python scripts/gateway_smoke.py
CI runs this after the test suite (.github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api.http import HttpClient  # noqa: E402
from repro.bench.gateway import workload_service  # noqa: E402
from repro.errors import RequestError, VertexError  # noqa: E402

DATASET = "youtube"
PORT = 8711
K = 5


def wait_healthy(base: str, deadline_s: float = 60.0) -> None:
    start = time.time()
    while time.time() - start < deadline_s:
        try:
            with urllib.request.urlopen(f"{base}/v1/healthz", timeout=2) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.3)
    raise SystemExit(f"server on {base} never became healthy")


def main() -> int:
    from repro.kernels import describe

    info = describe()
    print(f"kernel backend: {info['backend']} ({info['reason']})")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", DATASET, "--port", str(PORT)],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    base = f"http://127.0.0.1:{PORT}"
    try:
        wait_healthy(base)
        http = HttpClient(base)

        # The embedded twin: same deterministic bootstrap, same query.
        service, prepared = workload_service(DATASET)
        embedded = service.api.top_k(prepared.source, k=K)

        answer = http.query({"source": prepared.source, "k": K})
        if answer["snapshot_version"] != embedded.snapshot_version:
            print("snapshot versions diverged", file=sys.stderr)
            return 1
        got = [(e["vertex"], e["estimate"]) for e in answer["entries"]]
        want = [(e.vertex, e.estimate) for e in embedded.entries]
        if got != want:
            print(f"top-{K} mismatch:\n  http     {got}\n  embedded {want}",
                  file=sys.stderr)
            return 1
        print(f"top-{K} over HTTP is bit-identical to the embedded client: {got}")

        # Stats and error paths.
        stats = http.stats()
        assert stats["ok"] and stats["stats"]["queries"] >= 1, stats
        try:
            http.query({"op": "bogus"})
            raise SystemExit("unknown op did not fail")
        except RequestError as exc:
            print(f"unknown op -> REQUEST: {exc}")
        try:
            http.query({"op": "score", "source": prepared.source, "target": 10**9})
            raise SystemExit("unknown target did not fail")
        except VertexError as exc:
            print(f"unknown score target -> VERTEX: {exc}")
        request = urllib.request.Request(
            f"{base}/v1/query", data=b"{not json", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=5)
            raise SystemExit("malformed JSON did not fail")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400, exc.code
            print("malformed JSON -> 400")
        try:
            urllib.request.urlopen(f"{base}/v1/nope", timeout=5)
            raise SystemExit("unknown route did not fail")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404, exc.code
            print("unknown route -> 404")
        print("gateway smoke: OK")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
