"""Docs lint: internal links resolve, code blocks actually run.

Checks README.md and every docs/*.md file:

* **links** — every relative markdown link target must exist on disk
  (external http(s)/mailto links and pure anchors are skipped);
* **python blocks** — every ```` ```python ```` fenced block is executed
  in a subprocess with ``PYTHONPATH=src``; tag a fence ``python no-run``
  to opt out;
* **bash blocks** — every ``python -m repro <command>`` line must name a
  real CLI subcommand, and every file path appearing in a
  ``python -m pytest`` line must exist.

Run from the repository root:  PYTHONPATH=src python scripts/check_docs.py
CI runs this after the test suite (.github/workflows/ci.yml).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\S*)(.*)$")


def iter_code_blocks(text: str):
    """Yield ``(language, info, first_line_number, code)`` per fenced block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = FENCE_RE.match(lines[i])
        if match and match.group(1):
            language, info = match.group(1), match.group(2)
            body: list[str] = []
            i += 1
            start = i + 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            yield language, info.strip(), start, "\n".join(body)
        i += 1


def check_links(path: Path, text: str) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.startswith("```"):
            in_fence = not in_fence
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not (path.parent / relative).resolve().exists():
                errors.append(f"{path.name}:{lineno}: broken link -> {target}")
    return errors


def check_python_blocks(path: Path, text: str) -> list[str]:
    errors = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    for language, info, lineno, code in iter_code_blocks(text):
        if language != "python" or "no-run" in info:
            continue
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
            timeout=300,
        )
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()[-1] if proc.stderr.strip() else "?"
            errors.append(f"{path.name}:{lineno}: python block failed: {tail}")
    return errors


def check_bash_blocks(path: Path, text: str) -> list[str]:
    from repro.cli import build_parser

    subcommands = set()
    for action in build_parser()._subparsers._group_actions:  # noqa: SLF001
        subcommands.update(action.choices or {})
    errors = []
    for language, _info, lineno, code in iter_code_blocks(text):
        if language not in ("bash", "sh", "shell", "console"):
            continue
        for offset, line in enumerate(code.splitlines()):
            cli = re.search(r"python -m repro\s+([a-z][a-z0-9-]*)", line)
            if cli and cli.group(1) not in subcommands:
                errors.append(
                    f"{path.name}:{lineno + offset}: unknown CLI command"
                    f" '{cli.group(1)}' (have: {sorted(subcommands)})"
                )
            if "python -m pytest" in line:
                for token in line.split():
                    if token.endswith(".py") and not (REPO / token).exists():
                        errors.append(
                            f"{path.name}:{lineno + offset}: missing file {token}"
                        )
    return errors


def check_file(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    return (
        check_links(path, text)
        + check_python_blocks(path, text)
        + check_bash_blocks(path, text)
    )


def docs_files() -> list[Path]:
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def main() -> int:
    errors: list[str] = []
    for path in docs_files():
        found = check_file(path)
        status = "ok" if not found else f"{len(found)} problem(s)"
        print(f"{path.relative_to(REPO)}: {status}")
        errors.extend(found)
    for error in errors:
        print(f"  {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
