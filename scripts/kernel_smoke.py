"""Kernel CI smoke: selection works, fallback works, answers agree.

Three checks, all cheap enough for every CI leg:

1. log which backend this host selected (``repro.kernels.describe``) —
   every CI job greps this line, so a silently-wrong selection (the
   compiled leg falling back, the numpy leg accidentally compiling)
   fails loudly;
2. ``REPRO_KERNEL=numpy`` and the selected default must serve
   bit-identical certified top-k answers over a real service — on a
   compiler-less host this degenerates to numpy-vs-numpy, which is
   exactly the graceful-fallback behavior the no-compiler CI job
   asserts;
3. when ``REPRO_KERNEL_EXPECT`` is set (``compiled`` or ``numpy``), the
   selected backend must match it — CI pins expectations per leg.

Run from the repository root:  PYTHONPATH=src python scripts/kernel_smoke.py
CI runs this in both backend legs (.github/workflows/ci.yml).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import DynamicDiGraph, PPRService, kernels  # noqa: E402
from repro.api.requests import FRESH, TopKQuery  # noqa: E402
from repro.config import KernelConfig, KernelMode  # noqa: E402
from repro.graph.generators import rmat_graph  # noqa: E402


def answers(service: PPRService, sources: range) -> list[list[tuple]]:
    out = []
    for source in sources:
        result = service.gateway.submit(
            TopKQuery(source=source, k=5, consistency=FRESH)
        )
        if not result.ok:
            raise SystemExit(f"query failed: {result}")
        out.append([(e.vertex, e.estimate) for e in result.entries])
    return out


def main() -> int:
    info = kernels.describe()
    print(f"kernel backend: {info['backend']}"
          f" (mode={info['mode']}, {info['reason']})")

    expect = os.environ.get("REPRO_KERNEL_EXPECT")
    if expect and info["backend"] != expect:
        print(f"expected backend {expect!r}, selected {info['backend']!r}",
              file=sys.stderr)
        return 1

    edges = rmat_graph(600, 4_000, rng=20170901)
    selected = PPRService(DynamicDiGraph.from_edge_array(edges))
    oracle = PPRService(
        DynamicDiGraph.from_edge_array(edges),
        selected.config.with_(kernel=KernelConfig(mode=KernelMode.NUMPY)),
    )
    sources = range(8)
    if answers(selected, sources) != answers(oracle, sources):
        print("certified top-k diverged between selected kernel and numpy",
              file=sys.stderr)
        return 1
    print(f"certified top-k identical across {info['backend']}/numpy"
          f" for {len(sources)} sources")
    print("kernel smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
