"""Observability CI smoke: one trace must cover the whole request path.

Starts ``python -m repro serve --replicas 2 --trace`` (the replicated
cluster tier with 100% trace sampling) as a real subprocess, submits a
coalescible batch of FRESH top-k reads over HTTP, then fetches the
batch's trace from ``GET /v1/trace/<id>`` and asserts:

* the span tree covers every layer — HTTP ingress (``http.request``),
  admission/queue wait (``queue.wait``), the coalescing scheduler
  (``schedule.run``), replica-side execution (``gateway.execute`` /
  ``engine.query`` from a worker process), and the push kernel
  (``push.run``);
* spans arrive from at least two distinct processes (the coordinator
  and a replica) stitched into one trace;
* every non-root ``parent_id`` resolves within the trace — the tree has
  no orphans;
* the spans convert to a loadable Chrome ``trace_event`` document;
* ``GET /v1/slow`` answers.

Run from the repository root:  PYTHONPATH=src python scripts/obs_smoke.py
CI runs this after the test suite (.github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api.http import HttpClient  # noqa: E402
from repro.obs.export import chrome_trace, format_tree  # noqa: E402

DATASET = "youtube"
PORT = 8713
K = 5

#: Span names that must appear for the trace to count as end-to-end.
REQUIRED_SPANS = {
    "http.request",     # ingress root
    "queue.wait",       # admission/queue wait
    "schedule.run",     # read-coalescing scheduler
    "gateway.execute",  # gateway dispatch (coordinator and/or replica)
    "engine.query",     # replica-side engine execution
    "push.run",         # the push kernel itself (cold FRESH sources)
    "http.respond",     # response serialization
}


def wait_healthy(base: str, deadline_s: float = 90.0) -> None:
    start = time.time()
    while time.time() - start < deadline_s:
        try:
            with urllib.request.urlopen(f"{base}/v1/healthz", timeout=2) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.3)
    raise SystemExit(f"server on {base} never became healthy")


def main() -> int:
    from repro.kernels import describe

    info = describe()
    print(f"kernel backend: {info['backend']} ({info['reason']})")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", DATASET,
            "--port", str(PORT), "--replicas", "2",
            "--trace", "--trace-sample", "1.0",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    base = f"http://127.0.0.1:{PORT}"
    try:
        wait_healthy(base)
        http = HttpClient(base)

        # A coalescible FRESH batch on cold sources: the scheduler plans
        # one read run, the cluster splits it across replicas, and the
        # replicas run cold admission pushes — every layer lights up.
        body = http._request(
            "POST",
            "/v1/query",
            {
                "requests": [
                    {"op": "top_k", "source": 0, "k": K,
                     "consistency": "fresh"},
                    {"op": "top_k", "source": 1, "k": K,
                     "consistency": "fresh"},
                    {"op": "top_k", "source": 0, "k": K,
                     "consistency": "fresh"},
                ]
            },
        )
        for response in body["responses"]:
            assert response.get("ok"), response
        trace_id = body.get("trace_id")
        assert trace_id, f"batch response carried no trace_id: {body.keys()}"

        spans = http.trace(trace_id)
        names = {span["name"] for span in spans}
        missing = REQUIRED_SPANS - names
        assert not missing, (
            f"trace {trace_id} is missing layers {sorted(missing)};"
            f" got {sorted(names)}\n{format_tree(spans)}"
        )

        pids = {span["pid"] for span in spans}
        assert len(pids) >= 2, (
            f"expected spans from >= 2 processes, got pids {sorted(pids)}"
        )

        ids = {span["span_id"] for span in spans}
        orphans = [
            span["name"]
            for span in spans
            if span["parent_id"] is not None and span["parent_id"] not in ids
        ]
        assert not orphans, f"unresolved parent ids on spans: {orphans}"

        document = chrome_trace(spans)
        assert document["traceEvents"], "chrome export produced no events"
        assert json.loads(json.dumps(document)) == document

        slow = http.slow(threshold_ms=0.0)
        assert isinstance(slow, list)

        print(format_tree(spans))
        print(
            f"obs smoke: OK — trace {trace_id} has {len(spans)} spans"
            f" across {len(pids)} processes,"
            f" {len(document['traceEvents'])} chrome events,"
            f" {len(slow)} slow-log entries"
        )
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
