"""Shard CI smoke: HTTP answers from a 2-shard tier must equal embedded.

Starts ``python -m repro serve --shards 2`` on a toy dataset analog as
a real subprocess, waits for ``/v1/healthz``, requests a certified
top-k over the socket, and asserts it is **bit-for-bit identical**
(vertex ids and float estimates) to the answer the embedded
single-process :class:`repro.api.Client` produces at the same snapshot
version — partitioning the graph across shard processes must never
change an answer, only who owns the rows. Also checks the shard-aware
operational surfaces: per-shard ``/v1/readyz`` payloads, the
``stats["shard"]`` section, and the ``repro_shard_*`` Prometheus
samples on ``/v1/metrics``.

Run from the repository root:  PYTHONPATH=src python scripts/shard_smoke.py
CI runs this after the test suite (.github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api.http import HttpClient  # noqa: E402
from repro.bench.gateway import workload_service  # noqa: E402

DATASET = "youtube"
PORT = 8713
SHARDS = 2
K = 5


def wait_healthy(base: str, deadline_s: float = 90.0) -> None:
    start = time.time()
    while time.time() - start < deadline_s:
        try:
            with urllib.request.urlopen(f"{base}/v1/healthz", timeout=2) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.3)
    raise SystemExit(f"server on {base} never became healthy")


def main() -> int:
    from repro.kernels import describe

    info = describe()
    print(f"kernel backend: {info['backend']} ({info['reason']})")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", DATASET,
            "--shards", str(SHARDS), "--port", str(PORT),
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    base = f"http://127.0.0.1:{PORT}"
    try:
        wait_healthy(base)
        http = HttpClient(base)

        # The embedded twin: same deterministic bootstrap, same query.
        service, prepared = workload_service(DATASET)
        embedded = service.api.top_k(prepared.source, k=K)

        answer = http.query({"source": prepared.source, "k": K})
        if answer["snapshot_version"] != embedded.snapshot_version:
            print("snapshot versions diverged", file=sys.stderr)
            return 1
        got = [(e["vertex"], e["estimate"]) for e in answer["entries"]]
        want = [(e.vertex, e.estimate) for e in embedded.entries]
        if got != want:
            print(
                f"top-{K} mismatch:\n  sharded  {got}\n  embedded {want}",
                file=sys.stderr,
            )
            return 1
        print(
            f"top-{K} over HTTP from {SHARDS} shards is bit-identical"
            f" to the embedded client: {got}"
        )

        # Readiness: one payload per shard, all caught up.
        with urllib.request.urlopen(f"{base}/v1/readyz", timeout=5) as response:
            ready = json.loads(response.read())
        shards = ready.get("replicas")
        assert isinstance(shards, list) and len(shards) == SHARDS, ready
        for payload in shards:
            assert payload["alive"] and payload["role"] == "shard", payload
            assert payload["lag"] == 0, payload
        print(f"readyz reports {len(shards)} live shards at zero lag")

        # Stats: the shard section carries per-shard placement payloads.
        stats = http.stats()["stats"]
        section = stats["shard"]
        assert section["shards"] == SHARDS, section
        assert len(section["per_shard"]) == SHARDS, section
        assert sum(section["edges"]) > 0, section
        print(
            "stats[shard]: edges per shard ="
            f" {section['edges']}, dispatched = {section['dispatched']}"
        )

        # Metrics: the per-shard Prometheus families are exported.
        with urllib.request.urlopen(f"{base}/v1/metrics", timeout=5) as response:
            metrics = response.read().decode()
        for family in (
            "repro_shard_edges{shard=",
            "repro_shard_frontier_bytes_total{shard=",
            "repro_shard_exchange_rounds_total{shard=",
        ):
            assert family in metrics, f"missing {family!r} in /v1/metrics"
        print("per-shard Prometheus families exported on /v1/metrics")
        print("shard smoke: OK")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
