"""Full experiment driver: regenerates every figure over all datasets.

Writes each table to ``benchmarks/results/full_figN.txt`` and a combined
report to ``benchmarks/results/full_report.txt``. This is the run recorded
in EXPERIMENTS.md; the per-figure pytest benchmarks run reduced versions.

Usage:  python scripts/run_experiments.py [--fast]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.figures import (
    ALL_DATASETS,
    fig4_optimizations,
    fig5_throughput,
    fig6_epsilon,
    fig7_source_degree,
    fig8_batch_size,
    fig9_resources,
    fig10_scalability,
)

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="small datasets only")
    args = parser.parse_args(argv)

    datasets = ("youtube", "pokec") if args.fast else ALL_DATASETS
    slides = 2
    jobs = [
        ("fig4", lambda: fig4_optimizations(datasets=datasets, num_slides=slides)),
        (
            "fig5",
            lambda: fig5_throughput(
                datasets=datasets, num_slides=slides, batch_fractions=(0.01, 0.001)
            ),
        ),
        (
            "fig6",
            lambda: fig6_epsilon(
                dataset="pokec",
                epsilons=(1e-3, 1e-4, 1e-5, 1e-6, 1e-7),
                num_slides=slides,
            ),
        ),
        (
            "fig7",
            lambda: fig7_source_degree(
                dataset="pokec", tiers=(10, 1_000, 1_000_000), num_slides=slides
            ),
        ),
        (
            "fig8",
            lambda: fig8_batch_size(
                dataset="pokec", fractions=(0.01, 0.001, 0.0001), num_slides=slides
            ),
        ),
        (
            "fig9",
            lambda: fig9_resources(
                dataset="pokec", fractions=(0.01, 0.001, 0.0001), num_slides=slides
            ),
        ),
        (
            "fig10",
            lambda: fig10_scalability(
                dataset="pokec",
                core_counts=(1, 2, 4, 8, 16, 20, 32, 40),
                num_slides=slides,
            ),
        ),
    ]

    RESULTS.mkdir(exist_ok=True)
    report: list[str] = []
    for name, job in jobs:
        start = time.time()
        result = job()
        table = result.table()
        elapsed = time.time() - start
        print(f"\n{table}\n[{name} regenerated in {elapsed:.1f}s]", flush=True)
        (RESULTS / f"full_{name}.txt").write_text(table + "\n")
        report.append(table)
        report.append(f"[{name} regenerated in {elapsed:.1f}s]\n")
    (RESULTS / "full_report.txt").write_text("\n".join(report))
    print(f"\nwrote {RESULTS}/full_report.txt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
