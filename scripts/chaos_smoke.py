"""Chaos CI smoke: failover under a scripted fault plan, over real HTTP.

Starts ``python -m repro serve --replicas 2 --store --chaos PLAN.json``
as a real subprocess with a :class:`repro.chaos.FaultPlan` that crashes
the primary on the third write, then drives writes and ANY reads over
the socket with a retrying :class:`repro.api.HttpClient` and asserts
the failover subsystem's acceptance bar end to end:

- every write is acked, including the one that kills the primary
  (zero acked-write loss — the killing write forwards to the promoted
  replica);
- ANY reads answer throughout; ``/v1/healthz`` stays 200 (liveness)
  while ``/v1/readyz`` reports the promoted primary and bumped epoch;
- post-heal, a FRESH top-k for a source untouched during the run is
  **bit-identical** to an embedded twin fed the same writes at the
  same version;
- SIGTERM drains gracefully: in-flight work finishes, the store
  checkpoints, replicas join, and the process exits 0.

Run from the repository root:  PYTHONPATH=src python scripts/chaos_smoke.py
CI runs this after the test suite (.github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api.http import HttpClient  # noqa: E402
from repro.api.resilience import RetryPolicy  # noqa: E402
from repro.bench.gateway import workload_service  # noqa: E402
from repro.chaos import Fault, FaultKind, FaultPlan  # noqa: E402

DATASET = "youtube"
PORT = 8714
K = 5
KILL_AT_WRITE = 3
WRITES = [(10_000 + i, i) for i in range(6)]


def wait_healthy(base: str, deadline_s: float = 90.0) -> None:
    start = time.time()
    while time.time() - start < deadline_s:
        try:
            with urllib.request.urlopen(f"{base}/v1/healthz", timeout=2) as response:
                if json.loads(response.read()).get("status") == "ok":
                    return
        except (urllib.error.URLError, ConnectionError):
            time.sleep(0.3)
    raise SystemExit(f"server on {base} never became healthy")


def main() -> int:
    from repro.kernels import describe

    info = describe()
    print(f"kernel backend: {info['backend']} ({info['reason']})")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-")
    plan_path = Path(tmp.name) / "plan.json"
    FaultPlan(
        faults=(Fault("primary.apply", FaultKind.CRASH, at=KILL_AT_WRITE),),
        name="smoke-kill-primary",
    ).dump(plan_path)
    store_dir = Path(tmp.name) / "store"

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", DATASET,
            "--port", str(PORT), "--replicas", "2",
            "--store", str(store_dir), "--chaos", str(plan_path),
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base = f"http://127.0.0.1:{PORT}"
    try:
        wait_healthy(base)
        http = HttpClient(
            base, retry=RetryPolicy(attempts=3, base_backoff_s=0.1)
        )
        ready = http.readyz()
        assert ready["ready"] and ready["epoch"] == 0, ready

        # The embedded twin: same deterministic bootstrap, same writes.
        service, prepared = workload_service(DATASET)
        probe = prepared.source  # untouched until the post-heal check

        # Writes around the scripted primary crash; ANY reads between.
        deadline = 10.0
        for index, edge in enumerate(WRITES, start=1):
            start = time.time()
            ack = http.ingest([list(edge)])
            elapsed = time.time() - start
            assert ack["ok"], f"write {index} lost: {ack}"
            assert elapsed < deadline, f"write {index} took {elapsed:.1f}s"
            service.api.ingest([edge])

            answer = http.query(
                {"op": "top_k", "source": index % 5, "k": K,
                 "consistency": "any"}
            )
            assert answer["ok"], f"ANY read {index} failed: {answer}"
        print(f"all {len(WRITES)} writes acked across the primary crash")

        # Liveness stayed up; readiness now names the promoted replica.
        assert http.healthz()["status"] == "ok"
        ready = http.readyz()
        assert ready["ready"], f"cluster did not heal: {ready}"
        assert ready["epoch"] >= 1, f"no epoch bump: {ready}"
        assert str(ready["primary"]).startswith("replica-"), ready
        print(f"failover: epoch {ready['epoch']}, primary {ready['primary']}")

        stats = http.stats()["stats"]["cluster"]
        assert stats["failovers"] >= 1, stats
        assert any(e["site"] == "primary.apply" for e in stats["chaos"]), stats

        # Post-heal bit-identity at matched versions on an untouched
        # source: both arms compute it from scratch at head.
        embedded = service.api.top_k(probe, k=K)
        answer = http.query({"source": probe, "k": K})
        assert answer["snapshot_version"] == embedded.snapshot_version, (
            answer["snapshot_version"], embedded.snapshot_version,
        )
        got = [(e["vertex"], e["estimate"]) for e in answer["entries"]]
        want = [(e.vertex, e.estimate) for e in embedded.entries]
        if got != want:
            print(f"post-heal mismatch:\n  http     {got}\n  embedded {want}",
                  file=sys.stderr)
            return 1
        print(f"post-heal top-{K} bit-identical to the embedded twin: {got}")

        # Graceful shutdown: SIGTERM must drain, checkpoint, and exit 0.
        server.send_signal(signal.SIGTERM)
        output, _ = server.communicate(timeout=30)
        if server.returncode != 0:
            print(f"serve exited {server.returncode}:\n{output}", file=sys.stderr)
            return 1
        assert "checkpoint" in output, f"no drain checkpoint in:\n{output}"
        print("SIGTERM drained gracefully: checkpointed, replicas joined, exit 0")
        print("chaos smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        tmp.cleanup()


if __name__ == "__main__":
    sys.exit(main())
