"""Packaging for the ``repro`` library.

Installs the reproduction of Guo, Li, Sha, Tan, "Parallel Personalized
PageRank on Dynamic Graphs" (PVLDB 11(1), 2017). The long description is
the project README; see ``docs/architecture.md`` for the module map and
``python -m repro --help`` for the CLI this package installs as its entry
point.
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-dynamic-ppr",
    version="1.0.0",
    description=(
        "Parallel Personalized PageRank on Dynamic Graphs (PVLDB'17):"
        " incremental maintenance, parallel local push, and a multi-query"
        " serving layer"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: the typed request/response API is visible to type-checkers.
    # The C kernel source ships with the wheel: it is compiled on demand at
    # runtime (repro.kernels.build), not at install time.
    package_data={"repro": ["py.typed"], "repro.kernels": ["_push.c"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Typing :: Typed",
    ],
)
