"""Figure 6 — effect of the error threshold epsilon.

Regenerates the latency-vs-epsilon table and benchmarks the push kernel
at three accuracy levels (the real Python work scales the same way the
simulated latency does).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig6_epsilon

from .conftest import PushKernel, emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig6_epsilon(dataset="youtube", epsilons=(1e-3, 1e-4, 1e-5, 1e-6), num_slides=2),
        "fig6.txt",
    )


@pytest.mark.parametrize("epsilon", [1e-4, 1e-5, 1e-6], ids=lambda e: f"eps={e:g}")
def test_push_kernel_epsilon(benchmark, epsilon):
    kernel = PushKernel("youtube", epsilon=epsilon)
    stats = benchmark(kernel.run)
    benchmark.extra_info["total_operations"] = stats.total_operations
