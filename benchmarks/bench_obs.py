"""Observability — sampled tracing must be nearly free.

Regenerates the tracing-overhead table (identical resident-read bursts
replayed with the tracer disabled vs enabled at 1% sampling, arms
interleaved round by round, best round per arm) and benchmarks the
traced request path with pytest-benchmark. Asserts the acceptance bar
of :mod:`repro.obs`: < 3% overhead at 1% sampling on the cheapest
requests the system serves.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.api.client import Client
from repro.bench.cluster import available_cores
from repro.bench.gateway import workload_service
from repro.bench.obs import obs_benchmark
from repro.config import ObsConfig

from .conftest import RESULTS_DIR

#: The acceptance bar: sampled tracing costs < 3% on the fast path.
OVERHEAD_BAR_PCT = 3.0


@pytest.fixture(scope="module")
def obs_result():
    return obs_benchmark("youtube")


@pytest.fixture(scope="module", autouse=True)
def obs_table(obs_result):
    table = obs_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.txt").write_text(table + "\n")


def test_sampled_tracing_overhead_under_bar(obs_result):
    """The acceptance bar: < 3% overhead at 1% sampling.

    Waived on starved single-core runners, where round-to-round
    scheduling noise swamps the microsecond-scale effect under test.
    """
    if available_cores() <= 1:
        pytest.skip("1-core runner: overhead measurement too noisy")
    assert obs_result.overhead_pct < OVERHEAD_BAR_PCT, (
        f"sampled tracing costs {obs_result.overhead_pct:+.2f}%"
        f" (bar {OVERHEAD_BAR_PCT:.0f}%):"
        f" {obs_result.disabled_qps:,.0f} reads/s disabled vs"
        f" {obs_result.sampled_qps:,.0f} reads/s sampled"
    )


def test_overhead_rounds_are_comparable(obs_result):
    """Both arms replayed the same burst shape the same number of times."""
    assert obs_result.rounds >= 3
    assert obs_result.queries_per_round >= 128
    assert obs_result.disabled_seconds > 0
    assert obs_result.sampled_seconds > 0


def test_fully_traced_request_path(benchmark):
    """Wall-clock of one fully-sampled traced top-k (worst case: 100%)."""
    service, _ = workload_service("youtube", cache_capacity=16)
    client = Client(service)
    source = int(service.graph.out_degree_array().argmax())
    client.top_k(source, 10)  # admit (cold push, untimed)
    obs.configure(ObsConfig(enabled=True, sample_rate=1.0))
    try:
        benchmark(client.top_k, source, 10)
        assert obs.snapshot()["tracing"]["traces_started"] > 0
    finally:
        obs.reset()
