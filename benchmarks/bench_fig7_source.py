"""Figure 7 — effect of the source vertex degree tier (top-10/1K/1M).

Regenerates the latency table per tier and benchmarks the push kernel for
the two extreme tiers.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig7_source_degree
from repro.bench.harness import Approach, run_approach
from repro.bench.workloads import WorkloadSpec, default_config, prepare_workload

from .conftest import emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig7_source_degree(dataset="youtube", tiers=(10, 1_000, 1_000_000), num_slides=2),
        "fig7.txt",
    )


@pytest.mark.parametrize("top_k", [10, 1_000_000], ids=["top-10", "top-1M"])
def test_source_tier_slide(benchmark, top_k):
    prepared = prepare_workload(WorkloadSpec(dataset="youtube", source_top_k=top_k))

    def one_slide():
        return run_approach(prepared, Approach.CPU_MT, default_config(), num_slides=1)

    result = benchmark(one_slide)
    benchmark.extra_info["source"] = prepared.source
    benchmark.extra_info["simulated_latency"] = result.mean_latency
