"""Shard — partitioned serving tier vs the single-process gateway.

Regenerates the shard-benchmark table (one mixed ingest + read trace
replayed against a 4-shard :class:`repro.shard.ShardedGateway` and a
single-process :class:`repro.api.Gateway`) and asserts the acceptance
bar of the partitioned tier: each shard's resident graph bytes at most
~60% of the single-process baseline, every response pair bit-identical
across FRESH / BOUNDED / ANY, every answer within its staleness
contract, and >= 1.5x ingest throughput with 4 shards on >= 4 cores.

The ingest-speedup bar is skipped (not failed) below 4 usable cores —
four shard processes cannot out-ingest one process on one core, and the
memory and correctness assertions are what must hold everywhere.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.cluster import available_cores
from repro.bench.shard import shard_benchmark

from .conftest import RESULTS_DIR

SHARDS = 4
MEMORY_BAR = 0.65
INGEST_BAR = 1.5


@pytest.fixture(scope="module")
def shard_result():
    return shard_benchmark("youtube", shards=SHARDS)


@pytest.fixture(scope="module", autouse=True)
def shard_table(shard_result):
    table = shard_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "shard.txt").write_text(table + "\n")


def test_answers_bit_identical_across_arms(shard_result):
    """Partitioning must not change answers, only who owns the rows."""
    assert shard_result.matched


def test_staleness_contracts_honored(shard_result):
    """Every FRESH/BOUNDED/ANY answer within its version contract."""
    assert shard_result.bounded_ok


def test_no_shard_respawns_on_a_clean_run(shard_result):
    assert shard_result.respawns == 0


def test_per_shard_memory_below_baseline(shard_result):
    """The memory bar: the largest shard holds <= ~60% of the baseline.

    Dense degree/presence arrays are replicated; the in-adjacency rows
    and per-source PPR state are what partitioning must actually shed.
    """
    assert shard_result.memory_ratio <= MEMORY_BAR, (
        f"largest shard {max(shard_result.per_shard_bytes):,} bytes vs"
        f" baseline {shard_result.baseline_bytes:,} bytes"
        f" — {shard_result.memory_ratio:.0%}"
    )


def test_sharded_ingest_speedup(shard_result):
    """The ingest bar: >= 1.5x with 4 shards (needs >= 4 cores)."""
    if available_cores() < SHARDS:
        pytest.skip(
            f"{available_cores()} usable cores cannot host {SHARDS}"
            " shards concurrently; measured"
            f" {shard_result.ingest_speedup:.2f}x — memory and"
            " correctness already asserted"
        )
    assert shard_result.ingest_speedup >= INGEST_BAR, (
        f"sharded ingest {shard_result.shard_ingest_seconds * 1e3:,.1f} ms"
        f" vs single {shard_result.single_ingest_seconds * 1e3:,.1f} ms"
        f" — only {shard_result.ingest_speedup:.2f}x"
    )
