"""Shared benchmark fixtures and helpers.

Each ``bench_figN_*.py`` module does two things:

1. regenerates that figure's data table (printed to stdout and written to
   ``benchmarks/results/figN.txt``) — the reproduction artifact;
2. times a representative Python kernel with pytest-benchmark so
   ``--benchmark-only`` also reports real wall-clock numbers.

The kernels are re-runnable: they copy a pre-restored state and run one
push to convergence per round.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.figures import FigureResult
from repro.bench.workloads import WorkloadSpec, default_config, prepare_workload
from repro.config import Backend, PPRConfig, PushVariant
from repro.core.invariant import restore_invariant
from repro.core.tracker import DynamicPPRTracker
from repro.graph.csr import CSRGraph

RESULTS_DIR = Path(__file__).parent / "results"


def emit(result: FigureResult, filename: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    table = result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table + "\n")


class PushKernel:
    """A re-runnable 'one slide' push workload for pytest-benchmark.

    Prepares a converged tracker state, applies one slide's restore-
    invariant, snapshots everything; ``run()`` then replays the push from
    a copy of that state. This isolates exactly the component the paper
    parallelizes.
    """

    def __init__(
        self,
        dataset: str = "youtube",
        *,
        variant: PushVariant = PushVariant.OPT,
        workers: int = 40,
        epsilon: float = 1e-5,
        batch_fraction: float = 0.01,
    ) -> None:
        prepared = prepare_workload(
            WorkloadSpec(dataset=dataset, batch_fraction=batch_fraction)
        )
        config = default_config(epsilon=epsilon).with_(
            backend=Backend.NUMPY, variant=variant, workers=workers
        )
        graph = prepared.initial_graph()
        tracker = DynamicPPRTracker(graph, prepared.source, config)
        window = prepared.new_window()
        slide = window.slide()
        touched = []
        for update in slide.updates:
            graph.apply(update)
            restore_invariant(tracker.state, graph, update, config.alpha)
            touched.append(update.u)
        self.config = config
        self.graph = graph
        self.csr = CSRGraph.from_digraph(graph)
        self.base_state = tracker.state
        self.seeds = touched

    def run(self):
        from repro.core.push_parallel import parallel_local_push

        state = self.base_state.copy()
        return parallel_local_push(
            state, self.graph, self.config, seeds=self.seeds, csr=self.csr
        )


@pytest.fixture(scope="session")
def youtube_kernel() -> PushKernel:
    return PushKernel("youtube")
