"""Micro-benchmarks of the core primitives (not tied to a paper figure).

Times the pieces the paper's latency decomposes into: restore-invariant,
CSR snapshotting (full rebuild vs delta overlay), the pure vs vectorized
engines, the sequential push, and the scatter-add crossover behind
``push_vectorized._BINCOUNT_THRESHOLD``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Backend, PPRConfig
from repro.core.invariant import restore_invariant
from repro.core.push_parallel import parallel_local_push
from repro.core.push_sequential import sequential_local_push
from repro.core.push_vectorized import _scatter_add
from repro.core.state import PPRState
from repro.graph.csr import CSRGraph
from repro.graph.delta import DeltaCSRGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import rmat_graph
from repro.graph.update import EdgeOp, EdgeUpdate


@pytest.fixture(scope="module")
def scale_free():
    edges = rmat_graph(4096, 40_000, rng=99)
    graph = DynamicDiGraph(map(tuple, edges.tolist()))
    return edges, graph


def test_csr_from_edge_array(benchmark, scale_free):
    edges, _ = scale_free
    csr = benchmark(CSRGraph.from_edge_array, edges)
    assert csr.num_edges == len(edges)


def test_csr_from_digraph(benchmark, scale_free):
    _, graph = scale_free
    csr = benchmark(CSRGraph.from_digraph, graph)
    assert csr.num_edges == graph.num_edges


def test_delta_snapshot_apply(benchmark, scale_free):
    """One batch layered as a delta overlay — the O(batch) rebuild killer."""
    edges, graph = scale_free
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(graph))
    updates = [
        EdgeUpdate(int(u), int(v), EdgeOp.INSERT) for u, v in edges[:100].tolist()
    ]
    for update in updates:
        graph.apply(update)

    applied = benchmark(view.apply_updates, graph, updates)
    for update in updates:
        graph.remove_edge(update.u, update.v)
    assert applied.num_edges == graph.num_edges + len(updates)


def test_delta_snapshot_consolidate(benchmark, scale_free):
    """The amortized merge back into a frozen base (vectorized O(n + m))."""
    edges, graph = scale_free
    view = DeltaCSRGraph.wrap(CSRGraph.from_digraph(graph))
    updates = [
        EdgeUpdate(int(u), int(v), EdgeOp.INSERT) for u, v in edges[:500].tolist()
    ]
    for update in updates:
        graph.apply(update)
    view = view.apply_updates(graph, updates)

    csr = benchmark(view.consolidate)
    for update in updates:
        graph.remove_edge(update.u, update.v)
    assert csr.num_edges == view.num_edges


@pytest.mark.parametrize("num_targets", [2048, 16384, 65536, 262144])
@pytest.mark.parametrize("strategy", ["add_at", "full_bincount"])
def test_scatter_add_crossover(benchmark, num_targets, strategy):
    """The scatter-add crossover that sets ``_scatter_add``'s policy.

    ``add_at`` allocates nothing; ``full_bincount`` (the historical
    every-large-call path) allocates a capacity-sized accumulator. On
    numpy ≥ 2 the crossover sits where the traversal count reaches the
    state-vector capacity (here 50k) — which is exactly where
    ``_scatter_add`` now switches.
    """
    cap = 50_000
    rng = np.random.default_rng(11)
    r = np.zeros(cap)
    targets = rng.integers(0, cap, size=num_targets)
    values = rng.random(num_targets)

    if strategy == "add_at":
        run = lambda: np.add.at(r, targets, values)  # noqa: E731
    else:
        def run():
            np.add(r, np.bincount(targets, weights=values, minlength=cap), out=r)

    benchmark(run)
    benchmark.extra_info["num_targets"] = num_targets
    # Whichever branch the dispatcher picks, the sums must agree (the two
    # primitives accumulate in different orders, so only up to rounding).
    expect = r.copy()
    np.add.at(expect, targets, values)
    _scatter_add(r, targets, values, cap)
    np.testing.assert_allclose(r, expect)


def test_restore_invariant_throughput(benchmark, scale_free):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-5)
    state = PPRState.initial(source, graph.capacity)
    parallel_local_push(state, graph, config, seeds=[source])
    updates = [
        EdgeUpdate(int(u), int(v), EdgeOp.INSERT) for u, v in edges[:500].tolist()
    ]

    def restore_batch_of_500():
        work_state = state.copy()
        for update in updates:
            # Degree bookkeeping only changes transiently; restore against
            # the live graph (insert of an existing edge is legal in a
            # multigraph and costs the same).
            graph.add_edge(update.u, update.v)
            restore_invariant(work_state, graph, update, config.alpha)
        for update in updates:
            graph.remove_edge(update.u, update.v)

    benchmark(restore_batch_of_500)


@pytest.mark.parametrize("backend", [Backend.PURE, Backend.NUMPY], ids=lambda b: b.value)
def test_push_from_scratch(benchmark, scale_free, backend):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-4, backend=backend, workers=40)
    csr = CSRGraph.from_digraph(graph) if backend is Backend.NUMPY else None

    def push():
        state = PPRState.initial(source, graph.capacity)
        return parallel_local_push(state, graph, config, seeds=[source], csr=csr)

    stats = benchmark(push)
    benchmark.extra_info["pushes"] = stats.pushes


def test_sequential_push_from_scratch(benchmark, scale_free):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-4)

    def push():
        state = PPRState.initial(source, graph.capacity)
        return sequential_local_push(state, graph, config, seeds=[source])

    stats = benchmark(push)
    benchmark.extra_info["pushes"] = stats.pushes
