"""Micro-benchmarks of the core primitives (not tied to a paper figure).

Times the pieces the paper's latency decomposes into: restore-invariant,
CSR snapshotting, the pure vs vectorized engines, and the sequential push.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Backend, PPRConfig
from repro.core.invariant import restore_invariant
from repro.core.push_parallel import parallel_local_push
from repro.core.push_sequential import sequential_local_push
from repro.core.state import PPRState
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import rmat_graph
from repro.graph.update import EdgeOp, EdgeUpdate


@pytest.fixture(scope="module")
def scale_free():
    edges = rmat_graph(4096, 40_000, rng=99)
    graph = DynamicDiGraph(map(tuple, edges.tolist()))
    return edges, graph


def test_csr_from_edge_array(benchmark, scale_free):
    edges, _ = scale_free
    csr = benchmark(CSRGraph.from_edge_array, edges)
    assert csr.num_edges == len(edges)


def test_csr_from_digraph(benchmark, scale_free):
    _, graph = scale_free
    csr = benchmark(CSRGraph.from_digraph, graph)
    assert csr.num_edges == graph.num_edges


def test_restore_invariant_throughput(benchmark, scale_free):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-5)
    state = PPRState.initial(source, graph.capacity)
    parallel_local_push(state, graph, config, seeds=[source])
    updates = [
        EdgeUpdate(int(u), int(v), EdgeOp.INSERT) for u, v in edges[:500].tolist()
    ]

    def restore_batch_of_500():
        work_state = state.copy()
        for update in updates:
            # Degree bookkeeping only changes transiently; restore against
            # the live graph (insert of an existing edge is legal in a
            # multigraph and costs the same).
            graph.add_edge(update.u, update.v)
            restore_invariant(work_state, graph, update, config.alpha)
        for update in updates:
            graph.remove_edge(update.u, update.v)

    benchmark(restore_batch_of_500)


@pytest.mark.parametrize("backend", [Backend.PURE, Backend.NUMPY], ids=lambda b: b.value)
def test_push_from_scratch(benchmark, scale_free, backend):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-4, backend=backend, workers=40)
    csr = CSRGraph.from_digraph(graph) if backend is Backend.NUMPY else None

    def push():
        state = PPRState.initial(source, graph.capacity)
        return parallel_local_push(state, graph, config, seeds=[source], csr=csr)

    stats = benchmark(push)
    benchmark.extra_info["pushes"] = stats.pushes


def test_sequential_push_from_scratch(benchmark, scale_free):
    edges, graph = scale_free
    source = int(edges[0, 0])
    config = PPRConfig(epsilon=1e-4)

    def push():
        state = PPRState.initial(source, graph.capacity)
        return sequential_local_push(state, graph, config, seeds=[source])

    stats = benchmark(push)
    benchmark.extra_info["pushes"] = stats.pushes
