"""Figure 5 — streaming throughput of every approach vs batch size.

Regenerates the throughput table (all six approaches) and benchmarks the
end-to-end slide processing of the parallel tracker (restore + snapshot +
push) — the real Python cost of consuming one batch.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig5_throughput
from repro.bench.harness import Approach, run_approach
from repro.bench.workloads import WorkloadSpec, default_config, prepare_workload

from .conftest import emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig5_throughput(
            datasets=("youtube", "pokec"),
            num_slides=2,
            batch_fractions=(0.01, 0.001),
        ),
        "fig5.txt",
    )


@pytest.mark.parametrize(
    "approach", [Approach.CPU_SEQ, Approach.CPU_MT, Approach.GPU], ids=lambda a: a.value
)
def test_slide_processing(benchmark, approach):
    prepared = prepare_workload(WorkloadSpec(dataset="youtube"))

    def one_slide():
        return run_approach(prepared, approach, default_config(), num_slides=1)

    result = benchmark(one_slide)
    benchmark.extra_info["simulated_throughput"] = result.throughput
