"""Figure 4 — effect of the optimizations (Opt/Eager/DupDetect/Vanilla).

Regenerates the per-dataset latency table for both device models and
benchmarks the real Python push kernel under each variant.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import fig4_optimizations
from repro.config import PushVariant

from .conftest import PushKernel, emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(fig4_optimizations(datasets=("youtube", "pokec"), num_slides=2), "fig4.txt")


@pytest.mark.parametrize("variant", list(PushVariant), ids=lambda v: v.value)
def test_push_variant_kernel(benchmark, variant):
    kernel = PushKernel("youtube", variant=variant)
    stats = benchmark(kernel.run)
    assert stats.pushes > 0
    benchmark.extra_info["pushes"] = stats.pushes
    benchmark.extra_info["iterations"] = stats.num_iterations
    benchmark.extra_info["dedup_checks"] = stats.dedup_checks
