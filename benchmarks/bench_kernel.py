"""Kernel — compiled push vs the numpy oracle, plus shm bootstrap scaling.

Regenerates the kernel-benchmark table (single-thread one-slide push on
the twitter analog under both kernels, shared-memory replica-bootstrap
timings at 1x/2x/4x edges, and a certified top-k differential trace)
and asserts the acceptance bars of the compiled tier:

* >= 5x single-thread push speedup over the vectorized numpy engine
  (waived — skipped, not failed — when the host has no C compiler);
* replica bootstrap via shared-memory attach stays ~flat as the
  snapshot grows 4x in edges, while the eager rebuild grows with m;
* certified top-k answers bit-identical across kernels at FRESH /
  BOUNDED / ANY, before and after ingest.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q``
(add ``--tiny`` via ``REPRO_BENCH_TINY=1`` for the CI smoke).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.kernel import SPEEDUP_BAR, kernel_benchmark

from .conftest import RESULTS_DIR

#: Attach time may wobble a little with allocator noise; "flat" means it
#: must not track the 4x data growth the eager path pays in full.
FLATNESS_BAR = 2.0


@pytest.fixture(scope="module")
def kernel_result():
    tiny = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")
    return kernel_benchmark("twitter", tiny=tiny)


@pytest.fixture(scope="module", autouse=True)
def kernel_table(kernel_result):
    table = kernel_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "kernel.txt").write_text(table + "\n")


def test_push_states_bit_identical(kernel_result):
    """Compiled and numpy kernels must agree to the last bit."""
    assert kernel_result.push_matched


def test_certified_topk_bit_identical_across_kernels(kernel_result):
    """The serving stack must not see which kernel ran."""
    assert kernel_result.certified_matched
    assert kernel_result.certified_answers > 0


def test_compiled_push_speedup(kernel_result):
    """The acceptance bar: >= 5x single-thread (needs a C compiler)."""
    if not kernel_result.compiled_available:
        pytest.skip(
            f"no compiled kernel on this host ({kernel_result.reason});"
            " correctness already asserted"
        )
    assert kernel_result.speedup >= SPEEDUP_BAR, (
        f"compiled {kernel_result.compiled_seconds * 1e3:.1f} ms vs numpy"
        f" {kernel_result.numpy_seconds * 1e3:.1f} ms"
        f" — only {kernel_result.speedup:.1f}x"
    )


def test_shm_bootstrap_flat_as_edges_grow(kernel_result):
    """Attach cost must not track the 4x edge growth the eager path pays."""
    assert kernel_result.bootstrap_ratio <= FLATNESS_BAR, (
        f"attach grew {kernel_result.bootstrap_ratio:.2f}x over a 4x graph"
        f" (eager grew {kernel_result.eager_ratio:.1f}x)"
    )
    assert kernel_result.eager_ratio > kernel_result.bootstrap_ratio
