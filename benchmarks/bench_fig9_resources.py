"""Figure 9 — resource consumption (simulated WO/GLD/L2DCM/L3CM/STL)."""

from __future__ import annotations

import pytest

from repro.bench.figures import fig9_resources
from repro.parallel.cost_model import CPUCostModel, GPUCostModel
from repro.parallel.simulator import profile_cpu, profile_gpu

from .conftest import emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig9_resources(dataset="youtube", fractions=(0.01, 0.001, 0.0001), num_slides=2),
        "fig9.txt",
    )


def test_profiling_overhead(benchmark, youtube_kernel):
    """The profilers themselves must be cheap relative to a push."""
    stats = youtube_kernel.run()

    def profile():
        return profile_gpu(stats, GPUCostModel()), profile_cpu(stats, CPUCostModel())

    gpu_prof, cpu_prof = benchmark(profile)
    assert 0 <= gpu_prof.warp_occupancy <= 1
    assert 0 <= cpu_prof.stall_ratio <= 1
