"""Durable store — crash recovery time vs from-scratch rebuild.

Regenerates the recovery table (the Fig-5 youtube sliding-window workload
with 32 warm sources, persisted with checkpoint-interval 10, killed after
12 slides) and asserts the store's acceptance bar: recovering from
checkpoint + WAL tail is >= 5x faster than rebuilding the same state from
the raw stream, with recovered top-k answers bit-for-bit equal to the
rebuilt (uninterrupted) run's.

Run with ``PYTHONPATH=src python -m pytest --import-mode=importlib
benchmarks/bench_recovery.py -q``.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.bench.recovery import recovery_benchmark

from .conftest import RESULTS_DIR


@pytest.fixture(scope="module")
def recovery_result():
    with tempfile.TemporaryDirectory(prefix="ppr-store-") as root:
        yield recovery_benchmark(
            "youtube",
            root,
            num_slides=12,
            num_sources=32,
            checkpoint_interval=10,
        )


@pytest.fixture(scope="module", autouse=True)
def recovery_table(recovery_result):
    table = recovery_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "recovery.txt").write_text(table + "\n")


def test_recovery_speedup_over_rebuild(recovery_result):
    """The acceptance bar: checkpoint+WAL beats full rebuild >= 5x."""
    assert recovery_result.speedup >= 5.0, (
        f"recovered in {recovery_result.recover_seconds * 1e3:.1f} ms vs rebuild"
        f" {recovery_result.rebuild_seconds * 1e3:.1f} ms"
        f" — only {recovery_result.speedup:.1f}x"
    )


def test_recovered_topk_bit_exact(recovery_result):
    assert recovery_result.topk_matched


def test_recovery_replayed_only_the_tail(recovery_result):
    """Replay length is bounded by the checkpoint interval."""
    assert (
        recovery_result.replayed_batches
        <= recovery_result.checkpoint_interval
    )
