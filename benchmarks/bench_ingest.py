"""Ingest hot path — delta-CSR snapshots vs per-batch full rebuild.

Regenerates the ingest-benchmark table (the Fig-8 batch-size sweep on
the twitter analog, served queries included) and asserts the delta
snapshot acceptance bar: at the smallest batch size the
:attr:`~repro.config.SnapshotStrategy.DELTA` ingest+query path is >= 3x
the full-rebuild path, with every served ``certified_top_k`` ranking
bit-identical between the two strategies.

Run with ``PYTHONPATH=src python -m pytest --import-mode=importlib
benchmarks/bench_ingest.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.ingest import ingest_benchmark
from repro.config import SnapshotStrategy

from .conftest import RESULTS_DIR


@pytest.fixture(scope="module")
def ingest_result():
    return ingest_benchmark("twitter", num_slides=5)


@pytest.fixture(scope="module", autouse=True)
def ingest_table(ingest_result):
    table = ingest_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ingest.txt").write_text(table + "\n")


def test_delta_speedup_at_small_batches(ingest_result):
    """The acceptance bar: >= 3x at the Fig-8-style smallest batch."""
    row = ingest_result.smallest_batch_row
    assert row.speedup >= 3.0, (
        f"delta {row.delta.updates_per_second:,.0f} upd/s vs rebuild"
        f" {row.rebuild.updates_per_second:,.0f} upd/s at batch"
        f" {row.batch_size} — only {row.speedup:.1f}x"
    )


def test_delta_answers_bit_identical(ingest_result):
    """Order-exactness contract: same rankings, bit for bit, every batch."""
    assert ingest_result.all_match
    for row in ingest_result.rows:
        assert row.rebuild.answers  # the comparison actually saw answers


def test_delta_path_actually_ran(ingest_result):
    """The delta side must advance incrementally, not fall back to rebuilds."""
    for row in ingest_result.rows:
        m = row.delta.metrics
        assert m.snapshot_delta_applies + m.snapshot_consolidations >= row.num_slides - 1
        assert m.snapshot_rebuilds <= 1  # the cold start only
        assert row.delta.strategy is SnapshotStrategy.DELTA
