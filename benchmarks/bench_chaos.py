"""Chaos — scripted faults against the replicated cluster tier.

Regenerates the chaos-benchmark table (one deterministic write/read
trace with a dropped replication frame and a mid-trace primary crash,
driven by a :class:`repro.chaos.FaultPlan`) and asserts the failover
subsystem's acceptance bar: zero acked-write loss across the primary
kill, every ANY read answered throughout the failover window, no
request past the deadline, and post-heal FRESH answers bit-identical
to a single-process oracle at matched versions.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.chaos import chaos_benchmark

from .conftest import RESULTS_DIR

REPLICAS = 3
#: Generous wall-clock bar per read — "no hangs", not a latency SLO.
DEADLINE_S = 5.0


@pytest.fixture(scope="module")
def chaos_result():
    return chaos_benchmark("youtube", replicas=REPLICAS)


@pytest.fixture(scope="module", autouse=True)
def chaos_table(chaos_result):
    table = chaos_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "chaos.txt").write_text(table + "\n")


def test_scripted_faults_actually_fired(chaos_result):
    """The plan is the experiment: both faults must have injected."""
    assert "primary.apply:crash" in chaos_result.injected
    assert any(f.startswith("cluster.ship:") for f in chaos_result.injected)


def test_primary_kill_promotes_with_zero_acked_write_loss(chaos_result):
    assert chaos_result.zero_loss
    assert chaos_result.epoch >= 1
    assert chaos_result.failovers >= 1


def test_any_reads_answered_throughout_the_failover_window(chaos_result):
    assert chaos_result.available


def test_no_request_hangs_past_the_deadline(chaos_result):
    assert chaos_result.max_read_ms <= DEADLINE_S * 1e3
    assert chaos_result.failover_write_ms <= DEADLINE_S * 1e3


def test_post_heal_answers_bit_identical_to_oracle(chaos_result):
    """Untouched probe sources, matched versions, bit-exact floats."""
    assert chaos_result.matched


def test_gap_killed_replica_was_rebuilt(chaos_result):
    assert chaos_result.respawns >= 1
