"""Gateway — read-coalescing scheduler vs per-request dispatch.

Regenerates the gateway-benchmark table (one mixed read/write request
trace replayed against two identical engines, one scheduled through
:meth:`repro.api.Gateway.submit_many`, one dispatched per request) and
benchmarks the coalesced burst path with pytest-benchmark. Asserts the
acceptance bar of the gateway scheduler: read-coalescing >= 2x over
per-request dispatch, with every response pair bit-identical.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py -q``.
"""

from __future__ import annotations

import pytest

from repro.api.requests import BatchQuery, Consistency, TopKQuery
from repro.bench.gateway import gateway_benchmark, workload_service

from .conftest import RESULTS_DIR


@pytest.fixture(scope="module")
def gateway_result():
    return gateway_benchmark("youtube")


@pytest.fixture(scope="module", autouse=True)
def gateway_table(gateway_result):
    table = gateway_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "gateway.txt").write_text(table + "\n")


def test_coalescing_speedup_over_dispatch(gateway_result):
    """The acceptance bar: the coalescing scheduler wins >= 2x."""
    assert gateway_result.speedup >= 2.0, (
        f"coalesced {gateway_result.coalesced_qps:,.0f} reads/s vs dispatch"
        f" {gateway_result.dispatch_qps:,.0f} reads/s"
        f" — only {gateway_result.speedup:.1f}x"
    )


def test_answers_bit_identical_across_arms(gateway_result):
    assert gateway_result.matched


def test_coalesced_burst_path(benchmark):
    """Wall-clock of one coalesced heavy-tailed read burst (warm engine)."""
    service, prepared = workload_service("youtube", cache_capacity=16)
    gateway = service.gateway
    neighbors = [v for v, _ in service.graph.out_neighbors(prepared.source)][:4]
    sources = [prepared.source] * 12 + neighbors
    gateway.submit(BatchQuery(sources=tuple(dict.fromkeys(sources)), k=10))
    burst = [
        TopKQuery(source=int(s), k=10, consistency=Consistency.bounded(4))
        for s in sources
    ]

    benchmark(gateway.submit_many, burst)
    assert gateway.counters["reads_coalesced"] > 0
