"""Serving layer — query throughput from maintained state vs recompute.

Regenerates the serving-benchmark table (a 64-source heavy-tailed query
mix over a sliding update stream, served by :class:`repro.serve.PPRService`)
and benchmarks the warm query path with pytest-benchmark. Asserts the
acceptance bar of the serving layer: >= 5x the throughput of per-query
from-scratch vectorized push at matched ε, with served top-k rankings
matching fresh :func:`repro.core.certify.certified_top_k` computations.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.serving import serving_benchmark
from repro.bench.workloads import WorkloadSpec, default_config, prepare_workload
from repro.config import Backend, ServeConfig
from repro.serve import PPRService

from .conftest import RESULTS_DIR


@pytest.fixture(scope="module")
def serving_result():
    return serving_benchmark("youtube")


@pytest.fixture(scope="module", autouse=True)
def serving_table(serving_result):
    table = serving_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving.txt").write_text(table + "\n")


def test_serving_speedup_over_recompute(serving_result):
    """The acceptance bar: serving from maintained state wins >= 5x."""
    assert serving_result.speedup >= 5.0, (
        f"served {serving_result.serve_qps:,.0f} q/s vs baseline"
        f" {serving_result.baseline_qps:,.0f} q/s"
        f" — only {serving_result.speedup:.1f}x"
    )


def test_serving_topk_matches_fresh_recompute(serving_result):
    assert serving_result.topk_matched


def test_warm_query_path(benchmark):
    """Wall-clock of the warm (resident, fresh-version) query path."""
    prepared = prepare_workload(WorkloadSpec(dataset="youtube"))
    config = default_config().with_(backend=Backend.NUMPY)
    service = PPRService(
        prepared.initial_graph(), config, ServeConfig(cache_capacity=8)
    )
    service.query(prepared.source)  # admit once; every timed call is a hit

    benchmark(service.query, prepared.source)
    assert service.metrics().hit_rate > 0.99
