"""Ablation benchmarks: the design-choice studies from DESIGN.md.

Regenerates the three ablation tables (A1 parallel loss, A2 batching,
A3 frontier generation) plus the accuracy-vs-cost study, and times the
two pushes the parallel-loss comparison is built from.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import (
    ablation_batching,
    ablation_frontier_generation,
    ablation_parallel_loss,
)
from repro.bench.accuracy import accuracy_study
from repro.config import Backend, PushVariant

from .conftest import PushKernel, emit


@pytest.fixture(scope="module", autouse=True)
def ablation_tables():
    emit(ablation_parallel_loss(dataset="youtube"), "ablation_loss.txt")
    emit(ablation_batching(dataset="youtube"), "ablation_batching.txt")
    emit(ablation_frontier_generation(dataset="youtube"), "ablation_frontier.txt")
    emit(
        accuracy_study(dataset="youtube", epsilons=(1e-4, 1e-5), walk_budgets=(6, 24)),
        "ablation_accuracy.txt",
    )


@pytest.mark.parametrize(
    "variant,workers",
    [(PushVariant.OPT, 1), (PushVariant.OPT, 40), (PushVariant.VANILLA, 40)],
    ids=["opt-seq-like", "opt-40", "vanilla-40"],
)
def test_parallel_loss_kernels(benchmark, variant, workers):
    kernel = PushKernel("youtube", variant=variant, workers=workers)
    stats = benchmark(kernel.run)
    benchmark.extra_info["pushes"] = stats.pushes
