"""Figure 10 — multi-core scalability of CPU-MT."""

from __future__ import annotations

import pytest

from repro.bench.figures import fig10_scalability

from .conftest import PushKernel, emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig10_scalability(
            dataset="youtube", core_counts=(1, 2, 4, 8, 16, 32, 40), num_slides=2
        ),
        "fig10.txt",
    )


@pytest.mark.parametrize("workers", [1, 8, 40], ids=lambda w: f"{w}-cores")
def test_push_kernel_worker_chunking(benchmark, workers):
    """Real kernel cost across scheduling widths (eager chunk width)."""
    kernel = PushKernel("youtube", workers=workers)
    stats = benchmark(kernel.run)
    benchmark.extra_info["pushes"] = stats.pushes
