"""Load — the open-loop goodput knee with and without admission control.

Regenerates the load-benchmark table (Zipf multi-tenant open-loop
traffic replayed at fractions of measured saturation through a bounded
admission queue and an unprotected unbounded queue) and asserts the
overload acceptance bars: goodput under SLO must *plateau* past
saturation (>= 70% of the admission arm's peak retained at 2x) instead
of collapsing, and the shedding must be priority-ordered — ANY
consistency reads pay first, FRESH reads and writes last.

The plateau bar is skipped (not failed) on starved single-core runners,
where the closed-loop saturation estimate is too noisy to hold a 70%
line against — the shedding-order and bookkeeping assertions are what
must hold everywhere.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_load.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.cluster import available_cores
from repro.bench.load import load_benchmark

from .conftest import RESULTS_DIR

PLATEAU_BAR = 0.7


@pytest.fixture(scope="module")
def load_result():
    return load_benchmark("youtube")


@pytest.fixture(scope="module", autouse=True)
def load_table(load_result):
    table = load_result.table()
    summary = (
        f"plateau: {load_result.plateau_ratio:.0%} of peak goodput"
        f" ({load_result.peak_goodput:,.0f}/s) retained at 2x saturation"
        f" ({load_result.saturation_rps:,.0f}/s measured closed-loop);"
        f" unprotected arm at 2x: {load_result.unprotected_at_2x:,.0f}/s"
    )
    print("\n" + table + "\n" + summary + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "load.txt").write_text(table + "\n" + summary + "\n")


def test_any_consistency_sheds_first(load_result):
    """Priority order at 2x: shed rate ANY >= BOUNDED >= FRESH/writes."""
    assert load_result.any_shed_first


def test_overload_is_shed_not_absorbed(load_result):
    """At 2x saturation the bounded queue must actually refuse work."""
    top = max(load_result.admission, key=lambda r: r.arrival_rate)
    assert top.shed_total > 0
    assert top.shed_rate("any") > 0.5


def test_conservation_every_run(load_result):
    """No request lost or double-counted in any run of either arm."""
    for report in load_result.admission + load_result.unprotected:
        assert report.offered == report.shed_total + report.accepted
        assert report.accepted == (
            report.served + report.expired_total
        )
        assert report.completed + report.failed == report.served
        assert report.good + report.late == report.completed


def test_goodput_plateaus_at_2x_saturation(load_result):
    """The acceptance bar: graceful degradation, not collapse."""
    if available_cores() <= 1:
        pytest.skip(
            "single-core runner: saturation estimate too noisy for the"
            " plateau bar; shedding order already asserted"
        )
    assert load_result.plateau_ratio >= PLATEAU_BAR, (
        f"goodput fell to {load_result.goodput_at_2x:,.0f}/s at 2x from a"
        f" peak of {load_result.peak_goodput:,.0f}/s"
        f" ({load_result.plateau_ratio:.0%} retained, bar {PLATEAU_BAR:.0%})"
    )


def test_admission_beats_unprotected_at_overload(load_result):
    """At 2x the bounded queue must out-serve the unbounded backlog."""
    if available_cores() <= 1:
        pytest.skip(
            "single-core runner: saturation estimate too noisy; shedding"
            " order already asserted"
        )
    assert load_result.goodput_at_2x >= load_result.unprotected_at_2x
