"""Cluster — replicated serving tier vs the single-process gateway.

Regenerates the cluster-benchmark table (one mixed read-heavy trace
replayed against a 4-replica :class:`repro.cluster.ClusterGateway` and
a single-process :class:`repro.api.Gateway`) and asserts the acceptance
bar of the scale-out tier: >= 2.5x throughput with 4 replicas on a
4-core machine, every response pair bit-identical, and every
BOUNDED/ANY answer within its staleness contract.

The speedup bar is skipped (not failed) below 4 usable cores — a
replicated tier cannot beat one process on one core, and the
correctness assertions are what must hold everywhere.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py -q``.
"""

from __future__ import annotations

import pytest

from repro.bench.cluster import available_cores, cluster_benchmark

from .conftest import RESULTS_DIR

REPLICAS = 4
SPEEDUP_BAR = 2.5


@pytest.fixture(scope="module")
def cluster_result():
    return cluster_benchmark("youtube", replicas=REPLICAS)


@pytest.fixture(scope="module", autouse=True)
def cluster_table(cluster_result):
    table = cluster_result.table()
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cluster.txt").write_text(table + "\n")


def test_answers_bit_identical_across_arms(cluster_result):
    """Replication must not change answers, only who computes them."""
    assert cluster_result.matched


def test_staleness_contracts_honored(cluster_result):
    """Every FRESH/BOUNDED/ANY answer within its version contract."""
    assert cluster_result.bounded_ok


def test_no_replica_respawns_on_a_clean_run(cluster_result):
    assert cluster_result.respawns == 0


def test_replicated_speedup_over_single_process(cluster_result):
    """The acceptance bar: >= 2.5x with 4 replicas (needs >= 4 cores)."""
    if available_cores() < REPLICAS:
        pytest.skip(
            f"{available_cores()} usable cores cannot host {REPLICAS}"
            " replicas concurrently; correctness already asserted"
        )
    assert cluster_result.speedup >= SPEEDUP_BAR, (
        f"cluster {cluster_result.cluster_qps:,.0f} reads/s vs single"
        f" {cluster_result.single_qps:,.0f} reads/s"
        f" — only {cluster_result.speedup:.1f}x"
    )
