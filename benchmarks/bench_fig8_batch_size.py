"""Figure 8 — effect of the batch size (1% / 0.1% / 0.01% of the window)."""

from __future__ import annotations

import pytest

from repro.bench.figures import fig8_batch_size

from .conftest import PushKernel, emit


@pytest.fixture(scope="module", autouse=True)
def figure_table():
    emit(
        fig8_batch_size(dataset="youtube", fractions=(0.01, 0.001, 0.0001), num_slides=2),
        "fig8.txt",
    )


@pytest.mark.parametrize("fraction", [0.01, 0.001], ids=["1%", "0.1%"])
def test_push_kernel_batch(benchmark, fraction):
    kernel = PushKernel("youtube", batch_fraction=fraction)
    stats = benchmark(kernel.run)
    benchmark.extra_info["pushes"] = stats.pushes
